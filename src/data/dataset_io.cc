#include "data/dataset_io.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "common/csv.h"
#include "common/io.h"
#include "common/string_util.h"
#include "data/dataset_builder.h"

namespace tdac {

namespace {

const char* KindName(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kString:
      return "string";
    case Value::Kind::kInt:
      return "int";
    case Value::Kind::kDouble:
      return "double";
  }
  return "string";
}

Result<Value::Kind> ParseKind(const std::string& s) {
  if (s == "string") return Value::Kind::kString;
  if (s == "int") return Value::Kind::kInt;
  if (s == "double") return Value::Kind::kDouble;
  return Status::InvalidArgument("unknown value kind '" + s + "'");
}

/// Prefixes an ingestion error with the 1-based input line and the field
/// that failed, e.g. `claim CSV line 7, field "kind": ...`.
Status AtLine(const std::string& file_kind, size_t line,
              const std::string& field, const Status& status) {
  return Status(status.code(), file_kind + " line " + std::to_string(line) +
                                   ", field \"" + field +
                                   "\": " + status.message());
}

/// Parses the typed value of a row, reporting the offending text on error.
Result<Value> ParseRowValue(const std::string& file_kind, size_t line,
                            const std::string& kind_text,
                            const std::string& value_text) {
  Result<Value::Kind> kind = ParseKind(kind_text);
  if (!kind.ok()) return AtLine(file_kind, line, "kind", kind.status());
  Result<Value> value = Value::FromTextChecked(kind.value(), value_text);
  if (!value.ok()) return AtLine(file_kind, line, "value", value.status());
  return value;
}

}  // namespace

std::string DatasetToCsv(const Dataset& dataset) {
  CsvWriter w;
  w.WriteRow({"source", "object", "attribute", "kind", "value"});
  for (const Claim& c : dataset.claims()) {
    w.WriteRow({dataset.source_name(c.source), dataset.object_name(c.object),
                dataset.attribute_name(c.attribute), KindName(c.value.kind()),
                c.value.ToString()});
  }
  return w.contents();
}

Result<Dataset> DatasetFromCsv(const std::string& text) {
  TDAC_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsvWithLines(text));
  if (doc.rows.empty()) return Status::InvalidArgument("empty claim CSV");
  DatasetBuilder builder;
  for (size_t i = 1; i < doc.rows.size(); ++i) {
    const auto& row = doc.rows[i];
    const size_t line = doc.row_lines[i];
    if (row.size() != 5) {
      return Status::InvalidArgument(
          "claim CSV line " + std::to_string(line) + ": expected 5 fields "
          "(source,object,attribute,kind,value), got " +
          std::to_string(row.size()));
    }
    TDAC_ASSIGN_OR_RETURN(Value value,
                          ParseRowValue("claim CSV", line, row[3], row[4]));
    TDAC_RETURN_NOT_OK(
        builder.AddClaim(row[0], row[1], row[2], std::move(value)));
  }
  return builder.Build();
}

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  return AtomicWriteFile(path, DatasetToCsv(dataset));
}

Result<Dataset> LoadDataset(const std::string& path) {
  TDAC_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return DatasetFromCsv(text);
}

std::string GroundTruthToCsv(const GroundTruth& truth,
                             const Dataset& dataset) {
  CsvWriter w;
  w.WriteRow({"object", "attribute", "kind", "value"});
  for (uint64_t key : truth.SortedKeys()) {
    ObjectId o = ObjectFromKey(key);
    AttributeId a = AttributeFromKey(key);
    const Value* v = truth.Get(o, a);
    w.WriteRow({dataset.object_name(o), dataset.attribute_name(a),
                KindName(v->kind()), v->ToString()});
  }
  return w.contents();
}

Result<GroundTruth> GroundTruthFromCsv(const std::string& text,
                                       const Dataset& dataset) {
  TDAC_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsvWithLines(text));
  const auto& rows = doc.rows;
  if (rows.empty()) return Status::InvalidArgument("empty truth CSV");
  std::unordered_map<std::string, ObjectId> objects;
  for (int o = 0; o < dataset.num_objects(); ++o) {
    objects[dataset.object_name(o)] = o;
  }
  std::unordered_map<std::string, AttributeId> attributes;
  for (int a = 0; a < dataset.num_attributes(); ++a) {
    attributes[dataset.attribute_name(a)] = a;
  }
  GroundTruth truth;
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const size_t line = doc.row_lines[i];
    if (row.size() != 4) {
      return Status::InvalidArgument(
          "truth CSV line " + std::to_string(line) + ": expected 4 fields "
          "(object,attribute,kind,value), got " + std::to_string(row.size()));
    }
    auto oit = objects.find(row[0]);
    if (oit == objects.end()) {
      return AtLine("truth CSV", line, "object",
                    Status::NotFound("unknown object '" + row[0] + "'"));
    }
    auto ait = attributes.find(row[1]);
    if (ait == attributes.end()) {
      return AtLine("truth CSV", line, "attribute",
                    Status::NotFound("unknown attribute '" + row[1] + "'"));
    }
    TDAC_ASSIGN_OR_RETURN(Value value,
                          ParseRowValue("truth CSV", line, row[2], row[3]));
    truth.Set(oit->second, ait->second, std::move(value));
  }
  return truth;
}

Status SaveGroundTruth(const GroundTruth& truth, const Dataset& dataset,
                       const std::string& path) {
  return AtomicWriteFile(path, GroundTruthToCsv(truth, dataset));
}

std::string SourceTrustToCsv(const std::vector<double>& trust,
                             const Dataset& dataset) {
  CsvWriter w;
  w.WriteRow({"source", "trust"});
  const size_t n = std::min(trust.size(),
                            static_cast<size_t>(dataset.num_sources()));
  for (size_t s = 0; s < n; ++s) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", trust[s]);
    w.WriteRow({dataset.source_name(static_cast<SourceId>(s)), buf});
  }
  return w.contents();
}

Result<std::vector<double>> SourceTrustFromCsv(const std::string& text,
                                               const Dataset& dataset) {
  TDAC_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsvWithLines(text));
  const auto& rows = doc.rows;
  if (rows.empty()) return Status::InvalidArgument("empty trust CSV");
  std::unordered_map<std::string, SourceId> sources;
  for (int s = 0; s < dataset.num_sources(); ++s) {
    sources[dataset.source_name(s)] = s;
  }
  std::vector<double> trust(static_cast<size_t>(dataset.num_sources()), 0.0);
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const size_t line = doc.row_lines[i];
    if (row.size() != 2) {
      return Status::InvalidArgument(
          "trust CSV line " + std::to_string(line) +
          ": expected 2 fields (source,trust), got " +
          std::to_string(row.size()));
    }
    auto it = sources.find(row[0]);
    if (it == sources.end()) {
      return AtLine("trust CSV", line, "source",
                    Status::NotFound("unknown source '" + row[0] + "'"));
    }
    Result<Value> parsed = Value::FromTextChecked(Value::Kind::kDouble, row[1]);
    if (!parsed.ok()) {
      return AtLine("trust CSV", line, "trust", parsed.status());
    }
    trust[static_cast<size_t>(it->second)] = parsed.value().AsDouble();
  }
  return trust;
}

Status SaveSourceTrust(const std::vector<double>& trust,
                       const Dataset& dataset, const std::string& path) {
  return AtomicWriteFile(path, SourceTrustToCsv(trust, dataset));
}

Result<std::vector<double>> LoadSourceTrust(const std::string& path,
                                            const Dataset& dataset) {
  TDAC_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return SourceTrustFromCsv(text, dataset);
}

Result<GroundTruth> LoadGroundTruth(const std::string& path,
                                    const Dataset& dataset) {
  TDAC_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return GroundTruthFromCsv(text, dataset);
}

}  // namespace tdac
