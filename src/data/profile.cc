#include "data/profile.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/value.h"

namespace tdac {

namespace {
constexpr size_t kHistogramBuckets = 11;  // 1..10 distinct values, then 10+
}  // namespace

DatasetProfile ProfileDataset(const Dataset& data) {
  DatasetProfile p;
  p.num_sources = data.num_sources();
  p.num_objects = data.num_objects();
  p.num_attributes = static_cast<int>(data.ActiveAttributes().size());
  p.num_claims = data.num_claims();
  p.dcr = data.DataCoverageRate();
  p.num_items = data.DataItems().size();
  p.distinct_value_histogram.assign(kHistogramBuckets, 0);

  size_t conflicted = 0;
  size_t decisive = 0;
  size_t claims_total = 0;
  size_t distinct_total = 0;
  for (uint64_t key : data.DataItems()) {
    const auto& claim_indices =
        data.ClaimsOn(ObjectFromKey(key), AttributeFromKey(key));
    claims_total += claim_indices.size();
    p.max_claims_per_item = std::max(p.max_claims_per_item,
                                     claim_indices.size());
    std::unordered_map<Value, size_t, ValueHash> counts;
    for (int32_t idx : claim_indices) {
      ++counts[data.claim(static_cast<size_t>(idx)).value];
    }
    const size_t distinct = counts.size();
    distinct_total += distinct;
    p.max_distinct_values_per_item =
        std::max(p.max_distinct_values_per_item, distinct);
    size_t bucket = std::min(distinct, kHistogramBuckets - 1);
    ++p.distinct_value_histogram[bucket];
    if (distinct >= 2) {
      ++conflicted;
      size_t top = 0;
      // lint: unordered-ok (max of size_t is order-independent)
      for (const auto& [value, count] : counts) top = std::max(top, count);
      if (2 * top > claim_indices.size()) ++decisive;
    }
  }
  if (p.num_items > 0) {
    p.mean_claims_per_item =
        static_cast<double>(claims_total) / static_cast<double>(p.num_items);
    p.mean_distinct_values_per_item =
        static_cast<double>(distinct_total) / static_cast<double>(p.num_items);
    p.conflict_rate =
        static_cast<double>(conflicted) / static_cast<double>(p.num_items);
  }
  if (conflicted > 0) {
    p.majority_decisive_rate =
        static_cast<double>(decisive) / static_cast<double>(conflicted);
  }

  size_t min_claims = p.num_claims;
  size_t max_claims = 0;
  for (SourceId s = 0; s < data.num_sources(); ++s) {
    size_t c = data.ClaimsBySource(s).size();
    min_claims = std::min(min_claims, c);
    max_claims = std::max(max_claims, c);
  }
  if (data.num_sources() > 0) {
    p.mean_claims_per_source = static_cast<double>(p.num_claims) /
                               static_cast<double>(data.num_sources());
    p.min_claims_per_source = min_claims;
    p.max_claims_per_source = max_claims;
  }
  return p;
}

void PrintProfile(const DatasetProfile& p, std::ostream& os) {
  TablePrinter table({"Statistic", "Value"});
  auto add = [&](const std::string& k, const std::string& v) {
    table.AddRow({k, v});
  };
  add("sources", std::to_string(p.num_sources));
  add("objects", std::to_string(p.num_objects));
  add("attributes (active)", std::to_string(p.num_attributes));
  add("observations", std::to_string(p.num_claims));
  add("data items", std::to_string(p.num_items));
  add("data coverage rate", FormatDouble(p.dcr, 1) + "%");
  add("claims per item (mean/max)",
      FormatDouble(p.mean_claims_per_item, 2) + " / " +
          std::to_string(p.max_claims_per_item));
  add("distinct values per item (mean/max)",
      FormatDouble(p.mean_distinct_values_per_item, 2) + " / " +
          std::to_string(p.max_distinct_values_per_item));
  add("conflicted items", FormatDouble(p.conflict_rate * 100, 1) + "%");
  add("strict majority among conflicted",
      FormatDouble(p.majority_decisive_rate * 100, 1) + "%");
  add("claims per source (mean/min/max)",
      FormatDouble(p.mean_claims_per_source, 1) + " / " +
          std::to_string(p.min_claims_per_source) + " / " +
          std::to_string(p.max_claims_per_source));
  table.Print(os);

  os << "distinct-value histogram (items):";
  for (size_t d = 1; d < p.distinct_value_histogram.size(); ++d) {
    if (p.distinct_value_histogram[d] == 0) continue;
    os << " " << d
       << (d + 1 == p.distinct_value_histogram.size() ? "+:" : ":")
       << p.distinct_value_histogram[d];
  }
  os << "\n";
}

}  // namespace tdac
