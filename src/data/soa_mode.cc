#include "data/soa_mode.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace tdac {
namespace {

// -1 = not resolved yet, 0 = legacy, 1 = SoA. Atomic because pool workers
// read the mode while running kernels; the first reader may also resolve
// it (both racers compute the same value from the same environment).
std::atomic<int>& Mode() {
  static std::atomic<int> mode{-1};
  return mode;
}

}  // namespace

bool SoaKernelsEnabled() {
  int m = Mode().load(std::memory_order_relaxed);
  if (m < 0) {
    const char* env = std::getenv("TDAC_SOA");
    m = (env != nullptr && std::string_view(env) == "0") ? 0 : 1;
    Mode().store(m, std::memory_order_relaxed);
  }
  return m == 1;
}

void SetSoaKernelsEnabled(bool enabled) {
  Mode().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace tdac
