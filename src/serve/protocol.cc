#include "serve/protocol.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/checkpoint.h"
#include "common/string_util.h"

namespace tdac {
namespace {

/// Splits a line into whitespace-separated tokens (runs of spaces/tabs
/// collapse; Split() would keep empties).
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::istringstream in{std::string(line)};
  std::string token;
  while (in >> token) out.push_back(std::move(token));
  return out;
}

/// Splits "key=value" (value may be empty); returns false when '=' is
/// missing.
bool SplitKeyValue(const std::string& token, std::string* key,
                   std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed request line: " + what);
}

[[nodiscard]] Result<double> ParseDouble(const std::string& value,
                                         const std::string& key) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Malformed("bad number for " + key + ": '" + value + "'");
  }
  return parsed;
}

[[nodiscard]] Result<int64_t> ParseInt(const std::string& value,
                                       const std::string& key) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Malformed("bad integer for " + key + ": '" + value + "'");
  }
  return static_cast<int64_t>(parsed);
}

[[nodiscard]] Result<StopReason> ParseStopReason(const std::string& name) {
  for (int i = static_cast<int>(StopReason::kConverged);
       i <= static_cast<int>(StopReason::kOverloaded); ++i) {
    const auto reason = static_cast<StopReason>(i);
    if (name == StopReasonToString(reason)) return reason;
  }
  return Status::InvalidArgument("unknown stop reason '" + name + "'");
}

[[nodiscard]] Result<StatusCode> ParseStatusCode(const std::string& name) {
  for (int i = static_cast<int>(StatusCode::kOk);
       i <= static_cast<int>(StatusCode::kNotImplemented); ++i) {
    const auto code = static_cast<StatusCode>(i);
    if (name == StatusCodeToString(code)) return code;
  }
  return Status::InvalidArgument("unknown status code '" + name + "'");
}

}  // namespace

std::string_view ServeModeToString(ServeMode mode) {
  switch (mode) {
    case ServeMode::kBase:
      return "base";
    case ServeMode::kTdac:
      return "tdac";
  }
  return "unknown";
}

Result<ServeCommand> ParseCommandLine(std::string_view line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0][0] == '#') {
    return Status::NotFound("blank or comment line");
  }

  ServeCommand command;
  const std::string& word = tokens[0];
  if (word == "run") {
    command.kind = ServeCommand::Kind::kRun;
  } else if (word == "stats") {
    command.kind = ServeCommand::Kind::kStats;
  } else if (word == "ping") {
    command.kind = ServeCommand::Kind::kPing;
  } else if (word == "shutdown") {
    command.kind = ServeCommand::Kind::kShutdown;
  } else {
    return Malformed("unknown command '" + word + "'");
  }

  ServeRequest& run = command.run;
  for (size_t i = 1; i < tokens.size(); ++i) {
    std::string key, value;
    if (!SplitKeyValue(tokens[i], &key, &value)) {
      return Malformed("expected key=value, got '" + tokens[i] + "'");
    }
    if (key == "id") {
      command.id = value;
    } else if (command.kind != ServeCommand::Kind::kRun) {
      return Malformed("'" + word + "' takes only id=, got '" + key + "'");
    } else if (key == "claims") {
      run.claims_path = value;
    } else if (key == "algorithm") {
      run.algorithm = value;
    } else if (key == "mode") {
      if (value == "base") {
        run.mode = ServeMode::kBase;
      } else if (value == "tdac") {
        run.mode = ServeMode::kTdac;
      } else {
        return Malformed("unknown mode '" + value + "'");
      }
    } else if (key == "attrs") {
      for (const std::string& part : Split(value, ',')) {
        TDAC_ASSIGN_OR_RETURN(int64_t id, ParseInt(part, "attrs"));
        if (id < 0) return Malformed("negative attribute id in attrs");
        run.attributes.push_back(static_cast<AttributeId>(id));
      }
    } else if (key == "deadline-ms") {
      TDAC_ASSIGN_OR_RETURN(run.deadline_ms, ParseDouble(value, key));
    } else if (key == "iteration-budget") {
      TDAC_ASSIGN_OR_RETURN(run.iteration_budget, ParseInt(value, key));
    } else if (key == "threads") {
      TDAC_ASSIGN_OR_RETURN(int64_t threads, ParseInt(value, key));
      run.threads = static_cast<int>(threads);
    } else if (key == "no-cache") {
      run.no_cache = value != "0";
    } else {
      return Malformed("unknown key '" + key + "'");
    }
  }

  if (command.id.empty()) return Malformed("missing id=");
  if (command.kind == ServeCommand::Kind::kRun) {
    if (run.claims_path.empty()) return Malformed("run requires claims=");
    run.id = command.id;
  }
  return command;
}

std::string FormatRunLine(const ServeRequest& request) {
  std::ostringstream out;
  out << "run id=" << request.id << " claims=" << request.claims_path
      << " algorithm=" << request.algorithm
      << " mode=" << ServeModeToString(request.mode);
  if (!request.attributes.empty()) {
    out << " attrs=";
    for (size_t i = 0; i < request.attributes.size(); ++i) {
      out << (i > 0 ? "," : "") << request.attributes[i];
    }
  }
  if (request.deadline_ms > 0) out << " deadline-ms=" << request.deadline_ms;
  if (request.iteration_budget > 0) {
    out << " iteration-budget=" << request.iteration_budget;
  }
  if (request.threads != 1) out << " threads=" << request.threads;
  if (request.no_cache) out << " no-cache=1";
  return out.str();
}

std::string FormatResponseLine(const ServeResponse& response) {
  std::ostringstream out;
  switch (response.outcome) {
    case ServeResponse::Outcome::kOk:
      out << "ok id=" << response.id
          << " stop=" << StopReasonToString(response.stop_reason)
          << " items=" << response.items
          << " iterations=" << response.iterations
          << " ms=" << response.latency_ms
          << " cached=" << (response.cached ? 1 : 0)
          << " coalesced=" << (response.coalesced ? 1 : 0)
          << " degraded=" << (response.degraded() ? 1 : 0);
      break;
    case ServeResponse::Outcome::kRejected:
      out << "reject id=" << response.id
          << " reason=" << StopReasonToString(response.stop_reason)
          << " ms=" << response.latency_ms;
      break;
    case ServeResponse::Outcome::kError:
      out << "error id=" << response.id
          << " code=" << StatusCodeToString(response.status.code())
          << " ms=" << response.latency_ms
          << " message=" << EncodeToken(response.status.message());
      break;
  }
  // Only replayed responses carry the flag, so the common-case line format
  // (and everything that greps it) is unchanged.
  if (response.replayed) out << " replayed=1";
  return out.str();
}

Result<ServeResponse> ParseResponseLine(std::string_view line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Status::NotFound("blank line");
  const std::string& word = tokens[0];
  ServeResponse response;
  if (word == "ok") {
    response.outcome = ServeResponse::Outcome::kOk;
  } else if (word == "reject") {
    response.outcome = ServeResponse::Outcome::kRejected;
  } else if (word == "error") {
    response.outcome = ServeResponse::Outcome::kError;
  } else {
    return Status::NotFound("not a terminal response line: '" + word + "'");
  }

  StatusCode code = StatusCode::kOk;
  std::string message;
  for (size_t i = 1; i < tokens.size(); ++i) {
    std::string key, value;
    if (!SplitKeyValue(tokens[i], &key, &value)) {
      return Status::InvalidArgument("malformed response token '" + tokens[i] +
                                     "'");
    }
    if (key == "id") {
      response.id = value;
    } else if (key == "stop" || key == "reason") {
      TDAC_ASSIGN_OR_RETURN(response.stop_reason, ParseStopReason(value));
    } else if (key == "items") {
      TDAC_ASSIGN_OR_RETURN(int64_t items, ParseInt(value, key));
      response.items = static_cast<size_t>(items);
    } else if (key == "iterations") {
      TDAC_ASSIGN_OR_RETURN(int64_t iters, ParseInt(value, key));
      response.iterations = static_cast<int>(iters);
    } else if (key == "ms") {
      TDAC_ASSIGN_OR_RETURN(response.latency_ms, ParseDouble(value, key));
    } else if (key == "cached") {
      response.cached = value != "0";
    } else if (key == "coalesced") {
      response.coalesced = value != "0";
    } else if (key == "replayed") {
      response.replayed = value != "0";
    } else if (key == "degraded") {
      // Derived field; accepted and ignored on parse.
    } else if (key == "code") {
      TDAC_ASSIGN_OR_RETURN(code, ParseStatusCode(value));
    } else if (key == "message") {
      TDAC_ASSIGN_OR_RETURN(message, DecodeToken(value));
    } else {
      return Status::InvalidArgument("unknown response key '" + key + "'");
    }
  }
  if (response.id.empty()) {
    return Status::InvalidArgument("response line missing id=");
  }
  if (response.outcome == ServeResponse::Outcome::kError) {
    response.status = Status(code, std::move(message));
  }
  return response;
}

}  // namespace tdac
