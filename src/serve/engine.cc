#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <tuple>
#include <utility>

#include "common/checkpoint.h"
#include "data/dataset_io.h"
#include "data/dataset_like.h"
#include "td/registry.h"
#include "tdac/tdac.h"

namespace tdac {
namespace {

/// Deadline handed to the RunGuard when a request's budget was already
/// spent in the queue: small enough that the guard trips at its first
/// check, so the run produces exactly one labeled best-so-far iterate
/// instead of running unbounded.
constexpr double kExpiredDeadlineMs = 1e-3;

/// Flat per-claim cost estimate for the dataset LRU: the Claim row itself
/// plus its share of the column arrays and name tables. Coarse on purpose
/// — eviction only needs big datasets to weigh proportionally more.
constexpr size_t kBytesPerClaimRow = 96;

uint64_t MixHash(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

uint64_t HashString(uint64_t h, const std::string& s) {
  for (const char c : s) h = MixHash(h, static_cast<uint64_t>(c) + 1);
  return MixHash(h, s.size());
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

size_t ApproxDatasetBytes(const Dataset& dataset) {
  return sizeof(Dataset) + dataset.num_claims() * kBytesPerClaimRow;
}

std::string Hex16(uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

uint64_t ServeOptionsHash(const ServeRequest& request) {
  uint64_t h = 0x7464616320736572ULL;  // arbitrary domain tag
  h = HashString(h, request.algorithm);
  h = MixHash(h, static_cast<uint64_t>(request.mode));
  return h;
}

ServeEngine::ServeEngine(const ServeOptions& options)
    : options_(options),
      admission_limit_(std::max(1, options.workers) +
                       std::max(0, options.queue_capacity)),
      results_(options.result_cache_bytes),
      // workers + 1 because a ThreadPool of size n spawns n - 1 threads
      // (size 1 runs Submit inline on the caller, which would turn Submit
      // into a blocking call here).
      pool_(std::make_unique<ThreadPool>(std::max(1, options.workers) + 1)) {}

ServeEngine::~ServeEngine() { Shutdown(); }

void ServeEngine::Submit(ServeRequest request, Callback callback) {
  const Clock::time_point now = Clock::now();

  // Admission control: counter updates and the bound check happen in one
  // critical section, so the limit is exact and `submitted` can never
  // drift from `rejected + completed + in_flight`.
  bool rejected = false;
  bool closed = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++submitted_;
    closed = shutdown_;
    if (closed || in_flight_ >= admission_limit_) {
      ++rejected_;
      rejected = true;
    } else {
      ++in_flight_;
    }
  }
  if (rejected) {
    ServeResponse response;
    response.id = request.id;
    response.outcome = ServeResponse::Outcome::kRejected;
    response.stop_reason =
        closed ? StopReason::kCancelled : StopReason::kOverloaded;
    response.latency_ms = MillisSince(now);
    callback(response);
    return;
  }

  Admitted admitted;
  admitted.request = std::move(request);
  admitted.callback = std::move(callback);
  admitted.admitted_at = now;
  admitted.deadline_ms = admitted.request.deadline_ms > 0
                             ? admitted.request.deadline_ms
                             : options_.default_deadline_ms;

  auto shared = std::make_shared<Admitted>(std::move(admitted));
  pool_->Submit([this, shared]() { Execute(std::move(*shared)); });
}

ServeResponse ServeEngine::ExecuteBlocking(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  Submit(std::move(request), [&promise](const ServeResponse& response) {
    promise.set_value(response);
  });
  return future.get();
}

void ServeEngine::Drain() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  shutdown_ = true;
  // Both gauges: a request whose accounting is done but whose callback is
  // still emitting its response line has not fully left the building.
  drain_cv_.wait(lock, [this]() {
    return in_flight_ == 0 && callbacks_outstanding_ == 0;
  });
}

void ServeEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    shutdown_ = true;
  }
  cancel_.Cancel();
  Drain();
}

std::shared_ptr<ServeEngine::DatasetEntry> ServeEngine::DatasetFor(
    const std::string& path) {
  std::shared_ptr<DatasetEntry> entry;
  {
    std::lock_guard<std::mutex> lock(datasets_mutex_);
    std::shared_ptr<DatasetEntry>& slot = datasets_[path];
    if (slot == nullptr) slot = std::make_shared<DatasetEntry>();
    slot->last_used = ++dataset_tick_;
    entry = slot;
    // Evict by resident bytes, least-recently-used first, never the entry
    // this request is about to use (so one dataset larger than the whole
    // budget still serves — the budget degrades to "keep only the current
    // dataset", not "fail the request"). Entries still loading weigh 0
    // and are protected by their holders' shared_ptr either way.
    size_t resident = 0;
    // lint: unordered-ok (order-independent byte sum)
    for (const auto& [key, value] : datasets_) {
      resident += value->bytes.load(std::memory_order_relaxed);
    }
    while (resident > options_.dataset_cache_bytes && datasets_.size() > 1) {
      auto victim = datasets_.end();
      // lint: unordered-ok (min-scan with total-order tie-break)
      for (auto it = datasets_.begin(); it != datasets_.end(); ++it) {
        if (it->second == entry) continue;  // never evict the fresh lookup
        if (victim == datasets_.end() ||
            it->second->last_used < victim->second->last_used ||
            (it->second->last_used == victim->second->last_used &&
             it->first < victim->first)) {
          victim = it;
        }
      }
      if (victim == datasets_.end()) break;
      resident -= victim->second->bytes.load(std::memory_order_relaxed);
      datasets_.erase(victim);  // holders of the shared entry keep it alive
    }
  }

  // Load outside the map lock; concurrent requests for the same path block
  // here (not on the map) and exactly one performs the load.
  std::call_once(entry->once, [&entry, &path, this]() {
    Result<Dataset> loaded = LoadDataset(path);
    if (!loaded.ok()) {
      entry->status = loaded.status();
      return;
    }
    entry->dataset = std::make_shared<Dataset>(loaded.MoveValue());
    entry->restrictions = std::make_unique<RestrictionCache>(
        entry->dataset.get(), options_.restriction_cache_capacity);
    entry->fingerprint = DatasetFingerprint(*entry->dataset);
    entry->bytes.store(ApproxDatasetBytes(*entry->dataset),
                       std::memory_order_relaxed);
  });
  return entry;
}

void ServeEngine::Respond(const Admitted& admitted, ServeResponse response) {
  response.id = admitted.request.id;
  response.latency_ms = MillisSince(admitted.admitted_at);
  // Account before the callback, in one critical section: the request
  // moves from in-flight to completed atomically (the stats invariant
  // holds at every instant), and a caller woken by its callback (e.g.
  // ExecuteBlocking) already observes itself counted. The callback slot
  // gauge keeps Drain() honest: in-flight may be zero while the last
  // callback is still writing its response line.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    switch (response.outcome) {
      case ServeResponse::Outcome::kOk:
        ++completed_;
        if (response.stop_reason == StopReason::kDeadline) {
          ++deadline_degraded_;
        }
        break;
      case ServeResponse::Outcome::kError:
        ++completed_;
        ++errors_;
        break;
      case ServeResponse::Outcome::kRejected:
        // Admission rejections never reach Respond; kept for completeness.
        ++completed_;
        break;
    }
    --in_flight_;
    ++callbacks_outstanding_;
  }
  admitted.callback(response);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    --callbacks_outstanding_;
  }
  drain_cv_.notify_all();
}

void ServeEngine::Execute(Admitted admitted) {
  const ServeRequest& request = admitted.request;

  const std::shared_ptr<DatasetEntry> entry = DatasetFor(request.claims_path);
  if (!entry->status.ok()) {
    ServeResponse response;
    response.outcome = ServeResponse::Outcome::kError;
    response.status = entry->status;
    Respond(admitted, response);
    return;
  }

  // Resolve the DatasetLike this request actually runs on: the whole
  // dataset or a cached zero-copy restriction. The fingerprint is taken
  // over that exact data, so restrictions get their own cache identity.
  std::shared_ptr<const DatasetView> view;
  const DatasetLike* data = entry->dataset.get();
  uint64_t fingerprint = entry->fingerprint;
  if (!request.attributes.empty()) {
    view = entry->restrictions->Attributes(request.attributes);
    data = view.get();
    fingerprint = DatasetFingerprint(*view);
  }
  const ResultCacheKey key{fingerprint, ServeOptionsHash(request)};

  if (!request.no_cache) {
    if (std::shared_ptr<const TruthDiscoveryResult> hit = results_.Get(key)) {
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++cache_hits_;
      }
      ServeResponse response;
      response.outcome = ServeResponse::Outcome::kOk;
      response.stop_reason = hit->stop_reason;
      response.items = hit->predicted.size();
      response.iterations = hit->iterations;
      response.cached = true;
      Respond(admitted, response);
      return;
    }

    // Coalescing: an identical execution already in flight adopts this
    // request as a follower — one run, N responses. The follower's worker
    // slot frees immediately; its admission slot is released when the
    // leader responds on its behalf.
    {
      std::lock_guard<std::mutex> lock(flights_mutex_);
      auto [it, inserted] = flights_.try_emplace(
          std::make_pair(key.fingerprint, key.options_hash));
      if (!inserted) {
        {
          std::lock_guard<std::mutex> state_lock(state_mutex_);
          ++coalesced_;
        }
        it->second->followers.push_back(std::move(admitted));
        return;
      }
      it->second = std::make_shared<Flight>();
    }
  }

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++executions_;
  }

  // Deadline propagation: queue wait already spent part of the budget;
  // only the remainder reaches the guard. An exhausted budget still runs
  // one guarded iterate (kExpiredDeadlineMs) — exit-3 semantics, a labeled
  // best-so-far answer rather than a stall or an unbounded run.
  RunBudget budget;
  if (admitted.deadline_ms > 0) {
    const double remaining =
        admitted.deadline_ms - MillisSince(admitted.admitted_at);
    budget.deadline_ms = std::max(remaining, kExpiredDeadlineMs);
  }
  if (request.iteration_budget > 0) {
    budget.max_total_iterations = request.iteration_budget;
  }
  const RunGuard guard(budget, &cancel_);

  // Synthetic-work hook for saturation tests and the load generator:
  // cancellation-aware, deadline-aware sleep in small slices.
  if (options_.execution_delay_ms > 0) {
    const Clock::time_point start = Clock::now();
    while (MillisSince(start) < options_.execution_delay_ms) {
      if (guard.ShouldStop().has_value()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  Result<TruthDiscoveryResult> outcome = [&]() -> Result<TruthDiscoveryResult> {
    TDAC_ASSIGN_OR_RETURN(std::unique_ptr<TruthDiscovery> base,
                          MakeAlgorithm(request.algorithm));
    if (request.mode == ServeMode::kTdac) {
      TdacOptions tdac_options;
      tdac_options.base = base.get();
      tdac_options.threads = std::max(1, request.threads);
      // Warm restarts: with a checkpoint directory configured, the run
      // snapshots into a slot named by its cache identity and resumes
      // from it. The slot is unique among concurrent executions because
      // identical cacheable requests coalesce onto one leader; no-cache
      // requests skip coalescing, so they must skip checkpointing too.
      std::unique_ptr<Checkpointer> checkpointer;
      if (!options_.checkpoint_dir.empty() && !request.no_cache) {
        CheckpointOptions ckpt_options;
        ckpt_options.dir = options_.checkpoint_dir;
        ckpt_options.interval_ms = options_.checkpoint_interval_ms;
        ckpt_options.resume = true;
        checkpointer = std::make_unique<Checkpointer>(ckpt_options);
        tdac_options.checkpointer = checkpointer.get();
        tdac_options.checkpoint_prefix =
            "serve-" + Hex16(key.fingerprint) + "-" + Hex16(key.options_hash);
      }
      const Tdac tdac_algo(tdac_options);
      return tdac_algo.Discover(*data, guard);
    }
    return base->Discover(*data, guard);
  }();

  // Finish the flight first so late duplicates start a fresh run instead
  // of attaching to a completed one.
  std::vector<Admitted> followers;
  if (!request.no_cache) {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = flights_.find(std::make_pair(key.fingerprint, key.options_hash));
    if (it != flights_.end()) {
      followers = std::move(it->second->followers);
      flights_.erase(it);
    }
  }

  ServeResponse response;
  if (!outcome.ok()) {
    response.outcome = ServeResponse::Outcome::kError;
    response.status = outcome.status();
  } else {
    response.outcome = ServeResponse::Outcome::kOk;
    response.stop_reason = outcome->stop_reason;
    response.items = outcome->predicted.size();
    response.iterations = outcome->iterations;
    // Only clean results are cached: a degraded best-so-far iterate under
    // one budget is not the answer under another.
    if (!request.no_cache && !outcome->degraded()) {
      results_.Put(key,
                   std::make_shared<const TruthDiscoveryResult>(*outcome));
    }
  }

  Respond(admitted, response);
  for (const Admitted& follower : followers) {
    ServeResponse shared = response;
    shared.coalesced = true;
    Respond(follower, shared);
  }
}

ServeEngine::Stats ServeEngine::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    out.submitted = submitted_;
    out.rejected = rejected_;
    out.completed = completed_;
    out.executions = executions_;
    out.cache_hits = cache_hits_;
    out.coalesced = coalesced_;
    out.deadline_degraded = deadline_degraded_;
    out.errors = errors_;
    out.in_flight = in_flight_;
  }
  out.pool_queued = pool_->queued();
  out.pool_active = pool_->active();
  {
    std::lock_guard<std::mutex> lock(datasets_mutex_);
    out.dataset_cache_live = datasets_.size();
    // lint: unordered-ok (order-independent byte sum)
    for (const auto& [key, value] : datasets_) {
      out.dataset_cache_bytes += value->bytes.load(std::memory_order_relaxed);
    }
  }
  out.dataset_cache_budget = options_.dataset_cache_bytes;
  out.result_cache = results_.stats();
  return out;
}

}  // namespace tdac
