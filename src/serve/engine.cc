#include "serve/engine.h"

#include <algorithm>
#include <thread>
#include <tuple>
#include <utility>

#include "data/dataset_io.h"
#include "data/dataset_like.h"
#include "td/registry.h"
#include "tdac/tdac.h"

namespace tdac {
namespace {

/// Deadline handed to the RunGuard when a request's budget was already
/// spent in the queue: small enough that the guard trips at its first
/// check, so the run produces exactly one labeled best-so-far iterate
/// instead of running unbounded.
constexpr double kExpiredDeadlineMs = 1e-3;

uint64_t MixHash(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

uint64_t HashString(uint64_t h, const std::string& s) {
  for (const char c : s) h = MixHash(h, static_cast<uint64_t>(c) + 1);
  return MixHash(h, s.size());
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

uint64_t ServeOptionsHash(const ServeRequest& request) {
  uint64_t h = 0x7464616320736572ULL;  // arbitrary domain tag
  h = HashString(h, request.algorithm);
  h = MixHash(h, static_cast<uint64_t>(request.mode));
  return h;
}

ServeEngine::ServeEngine(const ServeOptions& options)
    : options_(options),
      admission_limit_(std::max(1, options.workers) +
                       std::max(0, options.queue_capacity)),
      results_(options.result_cache_capacity),
      // workers + 1 because a ThreadPool of size n spawns n - 1 threads
      // (size 1 runs Submit inline on the caller, which would turn Submit
      // into a blocking call here).
      pool_(std::make_unique<ThreadPool>(std::max(1, options.workers) + 1)) {}

ServeEngine::~ServeEngine() { Shutdown(); }

void ServeEngine::Submit(ServeRequest request, Callback callback) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point now = Clock::now();

  // Admission control: claim a slot, then re-check. fetch_add before the
  // comparison makes the bound exact under races — two late submitters
  // both see the counter past the limit and both back out.
  const bool closed = shutdown_.load(std::memory_order_acquire);
  const int occupied = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (closed || occupied > admission_limit_) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    ServeResponse response;
    response.id = request.id;
    response.outcome = ServeResponse::Outcome::kRejected;
    response.stop_reason =
        closed ? StopReason::kCancelled : StopReason::kOverloaded;
    response.latency_ms = MillisSince(now);
    callback(response);
    return;
  }

  Admitted admitted;
  admitted.request = std::move(request);
  admitted.callback = std::move(callback);
  admitted.admitted_at = now;
  admitted.deadline_ms = admitted.request.deadline_ms > 0
                             ? admitted.request.deadline_ms
                             : options_.default_deadline_ms;

  auto shared = std::make_shared<Admitted>(std::move(admitted));
  pool_->Submit([this, shared]() { Execute(std::move(*shared)); });
}

ServeResponse ServeEngine::ExecuteBlocking(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  Submit(std::move(request), [&promise](const ServeResponse& response) {
    promise.set_value(response);
  });
  return future.get();
}

void ServeEngine::Drain() {
  shutdown_.store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [this]() {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ServeEngine::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  cancel_.Cancel();
  Drain();
}

std::shared_ptr<ServeEngine::DatasetEntry> ServeEngine::DatasetFor(
    const std::string& path) {
  std::shared_ptr<DatasetEntry> entry;
  {
    std::lock_guard<std::mutex> lock(datasets_mutex_);
    std::shared_ptr<DatasetEntry>& slot = datasets_[path];
    if (slot == nullptr) slot = std::make_shared<DatasetEntry>();
    slot->last_used = ++dataset_tick_;
    entry = slot;
    const size_t capacity = std::max<size_t>(1, options_.dataset_cache_capacity);
    while (datasets_.size() > capacity) {
      auto victim = datasets_.end();
      // lint: unordered-ok (min-scan with total-order tie-break)
      for (auto it = datasets_.begin(); it != datasets_.end(); ++it) {
        if (it->second == entry) continue;  // never evict the fresh lookup
        if (victim == datasets_.end() ||
            it->second->last_used < victim->second->last_used ||
            (it->second->last_used == victim->second->last_used &&
             it->first < victim->first)) {
          victim = it;
        }
      }
      if (victim == datasets_.end()) break;
      datasets_.erase(victim);  // holders of the shared entry keep it alive
    }
  }

  // Load outside the map lock; concurrent requests for the same path block
  // here (not on the map) and exactly one performs the load.
  std::call_once(entry->once, [&entry, &path, this]() {
    Result<Dataset> loaded = LoadDataset(path);
    if (!loaded.ok()) {
      entry->status = loaded.status();
      return;
    }
    entry->dataset = std::make_shared<Dataset>(loaded.MoveValue());
    entry->restrictions = std::make_unique<RestrictionCache>(
        entry->dataset.get(), options_.restriction_cache_capacity);
    entry->fingerprint = DatasetFingerprint(*entry->dataset);
  });
  return entry;
}

void ServeEngine::Respond(const Admitted& admitted, ServeResponse response) {
  response.id = admitted.request.id;
  response.latency_ms = MillisSince(admitted.admitted_at);
  switch (response.outcome) {
    case ServeResponse::Outcome::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (response.stop_reason == StopReason::kDeadline) {
        deadline_degraded_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case ServeResponse::Outcome::kError:
      completed_.fetch_add(1, std::memory_order_relaxed);
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeResponse::Outcome::kRejected:
      // Admission rejections never reach Respond; kept for completeness.
      break;
  }
  admitted.callback(response);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  drain_cv_.notify_all();
}

void ServeEngine::Execute(Admitted admitted) {
  const ServeRequest& request = admitted.request;

  const std::shared_ptr<DatasetEntry> entry = DatasetFor(request.claims_path);
  if (!entry->status.ok()) {
    ServeResponse response;
    response.outcome = ServeResponse::Outcome::kError;
    response.status = entry->status;
    Respond(admitted, response);
    return;
  }

  // Resolve the DatasetLike this request actually runs on: the whole
  // dataset or a cached zero-copy restriction. The fingerprint is taken
  // over that exact data, so restrictions get their own cache identity.
  std::shared_ptr<const DatasetView> view;
  const DatasetLike* data = entry->dataset.get();
  uint64_t fingerprint = entry->fingerprint;
  if (!request.attributes.empty()) {
    view = entry->restrictions->Attributes(request.attributes);
    data = view.get();
    fingerprint = DatasetFingerprint(*view);
  }
  const ResultCacheKey key{fingerprint, ServeOptionsHash(request)};

  if (!request.no_cache) {
    if (std::shared_ptr<const TruthDiscoveryResult> hit = results_.Get(key)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      ServeResponse response;
      response.outcome = ServeResponse::Outcome::kOk;
      response.stop_reason = hit->stop_reason;
      response.items = hit->predicted.size();
      response.iterations = hit->iterations;
      response.cached = true;
      Respond(admitted, response);
      return;
    }

    // Coalescing: an identical execution already in flight adopts this
    // request as a follower — one run, N responses. The follower's worker
    // slot frees immediately; its admission slot is released when the
    // leader responds on its behalf.
    {
      std::lock_guard<std::mutex> lock(flights_mutex_);
      auto [it, inserted] = flights_.try_emplace(
          std::make_pair(key.fingerprint, key.options_hash));
      if (!inserted) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        it->second->followers.push_back(std::move(admitted));
        return;
      }
      it->second = std::make_shared<Flight>();
    }
  }

  executions_.fetch_add(1, std::memory_order_relaxed);

  // Deadline propagation: queue wait already spent part of the budget;
  // only the remainder reaches the guard. An exhausted budget still runs
  // one guarded iterate (kExpiredDeadlineMs) — exit-3 semantics, a labeled
  // best-so-far answer rather than a stall or an unbounded run.
  RunBudget budget;
  if (admitted.deadline_ms > 0) {
    const double remaining =
        admitted.deadline_ms - MillisSince(admitted.admitted_at);
    budget.deadline_ms = std::max(remaining, kExpiredDeadlineMs);
  }
  if (request.iteration_budget > 0) {
    budget.max_total_iterations = request.iteration_budget;
  }
  const RunGuard guard(budget, &cancel_);

  // Synthetic-work hook for saturation tests and the load generator:
  // cancellation-aware, deadline-aware sleep in small slices.
  if (options_.execution_delay_ms > 0) {
    const Clock::time_point start = Clock::now();
    while (MillisSince(start) < options_.execution_delay_ms) {
      if (guard.ShouldStop().has_value()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  Result<TruthDiscoveryResult> outcome = [&]() -> Result<TruthDiscoveryResult> {
    TDAC_ASSIGN_OR_RETURN(std::unique_ptr<TruthDiscovery> base,
                          MakeAlgorithm(request.algorithm));
    if (request.mode == ServeMode::kTdac) {
      TdacOptions tdac_options;
      tdac_options.base = base.get();
      tdac_options.threads = std::max(1, request.threads);
      const Tdac tdac_algo(tdac_options);
      return tdac_algo.Discover(*data, guard);
    }
    return base->Discover(*data, guard);
  }();

  // Finish the flight first so late duplicates start a fresh run instead
  // of attaching to a completed one.
  std::vector<Admitted> followers;
  if (!request.no_cache) {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = flights_.find(std::make_pair(key.fingerprint, key.options_hash));
    if (it != flights_.end()) {
      followers = std::move(it->second->followers);
      flights_.erase(it);
    }
  }

  ServeResponse response;
  if (!outcome.ok()) {
    response.outcome = ServeResponse::Outcome::kError;
    response.status = outcome.status();
  } else {
    response.outcome = ServeResponse::Outcome::kOk;
    response.stop_reason = outcome->stop_reason;
    response.items = outcome->predicted.size();
    response.iterations = outcome->iterations;
    // Only clean results are cached: a degraded best-so-far iterate under
    // one budget is not the answer under another.
    if (!request.no_cache && !outcome->degraded()) {
      results_.Put(key,
                   std::make_shared<const TruthDiscoveryResult>(*outcome));
    }
  }

  Respond(admitted, response);
  for (const Admitted& follower : followers) {
    ServeResponse shared = response;
    shared.coalesced = true;
    Respond(follower, shared);
  }
}

ServeEngine::Stats ServeEngine::stats() const {
  Stats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.executions = executions_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.deadline_degraded = deadline_degraded_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.in_flight = in_flight_.load(std::memory_order_acquire);
  out.pool_queued = pool_->queued();
  out.pool_active = pool_->active();
  out.result_cache = results_.stats();
  return out;
}

}  // namespace tdac
