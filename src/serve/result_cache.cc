#include "serve/result_cache.h"

#include <tuple>
#include <utility>

namespace tdac {
namespace {

/// Flat per-element cost estimates (node/bucket overhead plus payload).
/// Deliberately coarse: eviction only needs results to weigh in proportion
/// to the data they hold.
constexpr size_t kBytesPerPredictedItem = 64;
constexpr size_t kBytesPerConfidenceEntry = 48;
constexpr size_t kBytesPerSourceTrust = sizeof(double);

}  // namespace

size_t ApproxResultBytes(const TruthDiscoveryResult& result) {
  return sizeof(TruthDiscoveryResult) +
         result.predicted.size() * kBytesPerPredictedItem +
         result.confidence.size() * kBytesPerConfidenceEntry +
         result.source_trust.size() * kBytesPerSourceTrust;
}

std::shared_ptr<const TruthDiscoveryResult> ServeResultCache::Get(
    const ResultCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = memo_.find(key);
  if (it == memo_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_used = ++tick_;
  return it->second.result;
}

void ServeResultCache::Put(const ResultCacheKey& key,
                           std::shared_ptr<const TruthDiscoveryResult> result) {
  if (max_bytes_ == 0 || result == nullptr) return;
  const size_t entry_bytes = ApproxResultBytes(*result);
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry_bytes > max_bytes_) {
    // Oversized: caching it would flush the entire working set for one
    // entry that can never have company. Drop it instead.
    ++oversized_;
    return;
  }
  Entry& entry = memo_[key];
  bytes_ -= entry.bytes;  // zero for a fresh insert
  entry.result = std::move(result);
  entry.bytes = entry_bytes;
  entry.last_used = ++tick_;
  bytes_ += entry_bytes;
  while (bytes_ > max_bytes_ && memo_.size() > 1) {
    // Same LRU-scan-with-deterministic-tie-break discipline as
    // RestrictionCache: the map is small and eviction runs only on inserts
    // past the budget.
    auto victim = memo_.end();
    // lint: unordered-ok (min-scan with total-order tie-break)
    for (auto it = memo_.begin(); it != memo_.end(); ++it) {
      if (it->first == key) continue;  // never evict the fresh insert
      if (victim == memo_.end()) {
        victim = it;
        continue;
      }
      if (it->second.last_used < victim->second.last_used ||
          (it->second.last_used == victim->second.last_used &&
           std::tie(it->first.fingerprint, it->first.options_hash) <
               std::tie(victim->first.fingerprint,
                        victim->first.options_hash))) {
        victim = it;
      }
    }
    if (victim == memo_.end()) return;
    bytes_ -= victim->second.bytes;
    memo_.erase(victim);
    ++evictions_;
  }
}

ServeResultCache::Stats ServeResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.oversized = oversized_;
  out.live = memo_.size();
  out.bytes = bytes_;
  out.max_bytes = max_bytes_;
  return out;
}

}  // namespace tdac
