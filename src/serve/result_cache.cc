#include "serve/result_cache.h"

#include <tuple>
#include <utility>

namespace tdac {

std::shared_ptr<const TruthDiscoveryResult> ServeResultCache::Get(
    const ResultCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = memo_.find(key);
  if (it == memo_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_used = ++tick_;
  return it->second.result;
}

void ServeResultCache::Put(const ResultCacheKey& key,
                           std::shared_ptr<const TruthDiscoveryResult> result) {
  if (capacity_ == 0 || result == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = memo_[key];
  entry.result = std::move(result);
  entry.last_used = ++tick_;
  while (memo_.size() > capacity_) {
    // Same LRU-scan-with-deterministic-tie-break discipline as
    // RestrictionCache: the map is tiny (capacity + 1) and eviction runs
    // only on inserts past capacity.
    auto victim = memo_.end();
    // lint: unordered-ok (min-scan with total-order tie-break)
    for (auto it = memo_.begin(); it != memo_.end(); ++it) {
      if (it->first == key) continue;  // never evict the fresh insert
      if (victim == memo_.end()) {
        victim = it;
        continue;
      }
      if (it->second.last_used < victim->second.last_used ||
          (it->second.last_used == victim->second.last_used &&
           std::tie(it->first.fingerprint, it->first.options_hash) <
               std::tie(victim->first.fingerprint,
                        victim->first.options_hash))) {
        victim = it;
      }
    }
    if (victim == memo_.end()) return;
    memo_.erase(victim);
    ++evictions_;
  }
}

ServeResultCache::Stats ServeResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.live = memo_.size();
  return out;
}

}  // namespace tdac
