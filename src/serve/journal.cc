#include "serve/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/checkpoint.h"
#include "common/csv.h"
#include "common/io.h"
#include "common/logging.h"

namespace tdac {
namespace {

constexpr std::string_view kJournalMagic = "TDACJ1";

/// Threshold past which Emitted() compacts: enough delivered records that
/// the rewrite amortizes, and a file large enough to be worth shrinking.
constexpr uint64_t kCompactDeliveredThreshold = 64;
constexpr size_t kCompactMinFileBytes = 64 * 1024;

std::string CrcHex(std::string_view body) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%08x", Crc32(body));
  return buffer;
}

/// One record's body split into its space-separated head fields.
struct ParsedBody {
  std::string_view type;
  uint64_t seq = 0;
  std::string_view token;  // empty for emit records
};

bool ParseBody(std::string_view body, ParsedBody* out) {
  const size_t first = body.find(' ');
  if (first == std::string_view::npos) return false;
  out->type = body.substr(0, first);
  std::string_view rest = body.substr(first + 1);
  const size_t second = rest.find(' ');
  const std::string seq_text(
      second == std::string_view::npos ? rest : rest.substr(0, second));
  char* end = nullptr;
  const unsigned long long seq = std::strtoull(seq_text.c_str(), &end, 10);
  if (end == seq_text.c_str() || *end != '\0' || seq == 0) return false;
  out->seq = static_cast<uint64_t>(seq);
  out->token =
      second == std::string_view::npos ? std::string_view() : rest.substr(second + 1);
  return true;
}

}  // namespace

std::string FormatJournalRecord(std::string_view body) {
  std::string line(kJournalMagic);
  line += ' ';
  line += CrcHex(body);
  line += ' ';
  line += body;
  return line;
}

JournalReplay ClassifyJournal(std::string_view contents) {
  JournalReplay out;

  struct SeqState {
    bool has_request = false;
    bool has_response = false;
    bool emitted = false;
    ServeRequest request;
    ServeResponse response;
  };
  std::map<uint64_t, SeqState> seqs;

  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t newline = contents.find('\n', pos);
    if (newline == std::string_view::npos) {
      // Unterminated tail: a crash mid-append. The record is torn by
      // definition; drop it.
      ++out.dropped;
      break;
    }
    const std::string_view line = contents.substr(pos, newline - pos);
    pos = newline + 1;
    if (line.empty()) continue;  // newline-recovery padding after a fault

    // Frame: magic, CRC, body — any mismatch drops just this record.
    if (line.size() < kJournalMagic.size() + 1 ||
        line.substr(0, kJournalMagic.size()) != kJournalMagic ||
        line[kJournalMagic.size()] != ' ') {
      ++out.dropped;
      continue;
    }
    const std::string_view rest = line.substr(kJournalMagic.size() + 1);
    const size_t space = rest.find(' ');
    if (space == std::string_view::npos) {
      ++out.dropped;
      continue;
    }
    const std::string crc_text(rest.substr(0, space));
    const std::string_view body = rest.substr(space + 1);
    char* end = nullptr;
    const unsigned long crc = std::strtoul(crc_text.c_str(), &end, 16);
    if (end == crc_text.c_str() || *end != '\0' ||
        static_cast<uint32_t>(crc) != Crc32(body)) {
      ++out.dropped;
      continue;
    }

    ParsedBody parsed;
    if (!ParseBody(body, &parsed)) {
      ++out.dropped;
      continue;
    }
    SeqState& state = seqs[parsed.seq];
    if (parsed.type == "admit") {
      Result<std::string> decoded = DecodeToken(parsed.token);
      if (!decoded.ok()) {
        ++out.dropped;
        continue;
      }
      Result<ServeCommand> command = ParseCommandLine(*decoded);
      if (!command.ok() || command->kind != ServeCommand::Kind::kRun) {
        ++out.dropped;
        continue;
      }
      state.request = std::move(command->run);
      state.has_request = true;
    } else if (parsed.type == "done") {
      Result<std::string> decoded = DecodeToken(parsed.token);
      if (!decoded.ok()) {
        ++out.dropped;
        continue;
      }
      Result<ServeResponse> response = ParseResponseLine(*decoded);
      if (!response.ok()) {
        ++out.dropped;
        continue;
      }
      state.response = std::move(*response);
      state.has_response = true;
    } else if (parsed.type == "emit") {
      state.emitted = true;
    } else {
      ++out.dropped;
      continue;
    }
    ++out.records;
  }

  for (const auto& [seq, state] : seqs) {
    if (state.emitted) {
      ++out.delivered;
    } else if (state.has_response) {
      out.unacked.push_back({seq, state.response});
    } else if (state.has_request) {
      out.pending.push_back({seq, state.request});
    }
  }
  return out;
}

Result<std::unique_ptr<RequestJournal>> RequestJournal::Open(
    const std::string& path, JournalReplay* replay) {
  std::unique_ptr<RequestJournal> journal(new RequestJournal(path));
  *replay = {};
  if (FileExists(path)) {
    TDAC_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
    *replay = ClassifyJournal(contents);
  }

  std::lock_guard<std::mutex> lock(journal->mutex_);
  uint64_t max_live_seq = 0;
  for (const JournalReplay::Pending& pending : replay->pending) {
    std::string body = "admit " + std::to_string(pending.seq) + " " +
                       EncodeToken(FormatRunLine(pending.request));
    journal->live_[pending.seq].admit_line = FormatJournalRecord(body);
    max_live_seq = std::max(max_live_seq, pending.seq);
  }
  for (const JournalReplay::Unacked& unacked : replay->unacked) {
    std::string body = "done " + std::to_string(unacked.seq) + " " +
                       EncodeToken(FormatResponseLine(unacked.response));
    journal->live_[unacked.seq].done_line = FormatJournalRecord(body);
    max_live_seq = std::max(max_live_seq, unacked.seq);
  }
  journal->next_seq_ = max_live_seq + 1;

  // The initial compaction drops the previous generation's delivered and
  // torn records, clears any `.tmp` left by a crash mid-compaction, and
  // makes the journal file itself durable (AtomicWriteFile fsyncs the
  // parent directory).
  TDAC_RETURN_NOT_OK(journal->CompactLocked());
  journal->compactions_ = 0;  // bookkeeping starts after Open
  return journal;
}

RequestJournal::~RequestJournal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status RequestJournal::OpenFdLocked() {
  // The journal is the one deliberate exception to the atomic-replace
  // discipline: an append-only WAL cannot go through AtomicWriteFile
  // (rewriting the whole file per request would turn every admit into
  // O(file) work and widen, not shrink, the crash window). Safety comes
  // from the record framing instead — each line is individually
  // CRC-checked and fsynced, and replay drops torn tails.
  // lint: atomic-io-ok (append-only WAL; per-record CRC+fsync, torn tails drop)
  const int fd = ::open(path_.c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open journal for append " + path_ + ": " +
                           std::strerror(errno));
  }
  fd_ = fd;
  return Status::OK();
}

Status RequestJournal::AppendLocked(const std::string& body, bool durable) {
  Status status = Status::OK();
  if (fd_ < 0) status = OpenFdLocked();
  if (status.ok()) {
    std::string line;
    if (need_newline_recovery_) line += '\n';
    line += FormatJournalRecord(body);
    line += '\n';
    status = WriteFileDescriptor(fd_, line, path_);
    if (status.ok()) {
      need_newline_recovery_ = false;
      file_bytes_ += line.size();
    }
  }
  if (status.ok() && durable && ::fsync(fd_) != 0) {
    status = Status::IoError("fsync failed on journal " + path_ + ": " +
                             std::strerror(errno));
  }
  if (!status.ok()) {
    // A failed write may have persisted a torn prefix without its newline;
    // the next append leads with one so the torn bytes become their own
    // (CRC-rejected) line instead of gluing onto a valid record.
    need_newline_recovery_ = true;
    ++append_failures_;
    return status;
  }
  ++appends_;
  return Status::OK();
}

Result<uint64_t> RequestJournal::Admit(const ServeRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t seq = next_seq_;
  const std::string body = "admit " + std::to_string(seq) + " " +
                           EncodeToken(FormatRunLine(request));
  TDAC_RETURN_NOT_OK(AppendLocked(body, /*durable=*/true));
  next_seq_ = seq + 1;
  live_[seq].admit_line = FormatJournalRecord(body);
  return seq;
}

Status RequestJournal::Complete(uint64_t seq, const ServeResponse& response) {
  if (seq == 0) return Status::OK();  // unjournaled request
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string body = "done " + std::to_string(seq) + " " +
                           EncodeToken(FormatResponseLine(response));
  TDAC_RETURN_NOT_OK(AppendLocked(body, /*durable=*/true));
  live_[seq].done_line = FormatJournalRecord(body);
  return Status::OK();
}

void RequestJournal::Emitted(uint64_t seq) {
  if (seq == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // Best-effort by design: the response already reached stdout, so losing
  // this record can only cause a flagged duplicate on replay.
  (void)AppendLocked("emit " + std::to_string(seq), /*durable=*/false);
  live_.erase(seq);
  ++delivered_since_compact_;
  if (delivered_since_compact_ >= kCompactDeliveredThreshold &&
      file_bytes_ >= kCompactMinFileBytes) {
    Status compacted = CompactLocked();
    if (!compacted.ok()) {
      TDAC_LOG_WARNING << "journal compaction failed (will retry): "
                       << compacted.message();
    }
  }
}

Status RequestJournal::Compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  return CompactLocked();
}

Status RequestJournal::CompactLocked() {
  std::string contents;
  for (const auto& [seq, records] : live_) {
    contents +=
        records.done_line.empty() ? records.admit_line : records.done_line;
    contents += '\n';
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // Atomic swap: a crash anywhere in here leaves either the old journal
  // (fully intact, replay just re-drops the delivered records) or the new
  // one — never a torn mixture.
  TDAC_RETURN_NOT_OK(AtomicWriteFile(path_, contents));
  file_bytes_ = contents.size();
  delivered_since_compact_ = 0;
  need_newline_recovery_ = false;
  ++compactions_;
  return OpenFdLocked();
}

RequestJournal::Stats RequestJournal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.appends = appends_;
  out.append_failures = append_failures_;
  out.compactions = compactions_;
  out.next_seq = next_seq_;
  out.live = live_.size();
  out.file_bytes = file_bytes_;
  return out;
}

}  // namespace tdac
