#ifndef TDAC_SERVE_JOURNAL_H_
#define TDAC_SERVE_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/protocol.h"

namespace tdac {

/// \brief What a restarted daemon owes its clients, reconstructed from the
/// journal left behind by the previous process (docs/serving.md).
///
/// Each admitted request advances through three durable states; the replay
/// classifies every journaled sequence number by how far it got:
///
///   - **pending** (admit, no done): the request was admitted but its
///     execution never finished — it must be re-executed. Re-execution is
///     safe because nothing was ever sent to the client.
///   - **unacked** (admit + done, no emit): the execution finished and its
///     response is recorded, but the crash window between the durable done
///     record and the stdout write means the client may or may not have
///     seen it. The recorded response is re-emitted verbatim (flagged
///     `replayed=1`), never re-executed — this is what "the journal never
///     double-executes completed work" pins.
///   - **delivered** (admit + done + emit): nothing to do.
///
/// The emit record is written *after* the stdout write and without fsync,
/// so a crash can only ever under-report delivery — a lost emit record
/// turns into one duplicate flagged response, never a lost one. Exactly-
/// once delivery over a non-acknowledging pipe is impossible; the contract
/// is exactly-once execution-completion plus at-least-once delivery with
/// duplicates flagged for client-side dedup by request id.
struct JournalReplay {
  struct Pending {
    uint64_t seq = 0;
    ServeRequest request;
  };
  struct Unacked {
    uint64_t seq = 0;
    ServeResponse response;
  };

  std::vector<Pending> pending;  // ascending seq
  std::vector<Unacked> unacked;  // ascending seq
  uint64_t delivered = 0;        // fully-emitted requests found
  uint64_t records = 0;          // valid records read
  uint64_t dropped = 0;          // torn/corrupt records skipped
};

/// \brief Write-ahead journal for serving requests: one append-only text
/// file whose CRC-framed records make every admitted request's lifecycle
/// durable, so a restarted daemon can honor the work its predecessor
/// accepted.
///
/// Record format (one record per line, modeled on the checkpoint header's
/// magic + CRC discipline, common/checkpoint.h):
///
///     TDACJ1 <crc32-hex> admit <seq> <EncodeToken(request line)>
///     TDACJ1 <crc32-hex> done  <seq> <EncodeToken(response line)>
///     TDACJ1 <crc32-hex> emit  <seq>
///
/// The CRC covers everything after the "<crc32-hex> " field, so any byte
/// flip or torn tail is detected and the record dropped on replay (a torn
/// *admit* loses at most a request the client never got an answer for and
/// will retry; a torn *emit* costs at most one flagged duplicate).
///
/// Durability tiers: admit and done records are fsync'ed before the
/// operation they cover proceeds (execution must not start before its
/// admit record is durable; a response must not reach stdout before its
/// done record is). emit records are best-effort appends — see
/// JournalReplay for why that asymmetry is safe.
///
/// The file is bounded by compaction: once enough delivered records
/// accumulate, the journal atomically rewrites itself (AtomicWriteFile)
/// keeping only live records. Open() always compacts after replay, which
/// also clears any `.tmp` a crash mid-compaction left behind.
///
/// All methods are thread-safe (Complete/Emitted run on engine worker
/// threads while Admit runs on the daemon's main loop).
class RequestJournal {
 public:
  struct Stats {
    uint64_t appends = 0;          // records successfully appended
    uint64_t append_failures = 0;  // failed appends (journal degraded)
    uint64_t compactions = 0;
    uint64_t next_seq = 1;
    size_t live = 0;        // admitted, not yet fully delivered
    size_t file_bytes = 0;  // journal size on disk (approximate)
  };

  /// Opens (creating if absent) the journal at `path`, classifies the
  /// previous generation's records into `*replay`, compacts the file down
  /// to live records, and leaves the journal ready for appends. Sequence
  /// numbering continues above every live seq, so replayed work never
  /// collides with new admissions.
  [[nodiscard]] static Result<std::unique_ptr<RequestJournal>> Open(
      const std::string& path, JournalReplay* replay);

  ~RequestJournal();

  RequestJournal(const RequestJournal&) = delete;
  RequestJournal& operator=(const RequestJournal&) = delete;

  /// Durably records `request` as admitted and returns its journal seq.
  /// On failure nothing was persisted — the caller may proceed without
  /// journal coverage for this request (availability over durability; the
  /// failure is counted in stats and the daemon logs it).
  [[nodiscard]] Result<uint64_t> Admit(const ServeRequest& request);

  /// Durably records the terminal `response` for `seq`. After this
  /// returns, a restart will re-emit the recorded response instead of
  /// re-executing the request.
  [[nodiscard]] Status Complete(uint64_t seq, const ServeResponse& response);

  /// Records that `seq`'s response reached stdout. Best-effort (no fsync,
  /// failures ignored): losing this record costs one flagged duplicate on
  /// replay, never a lost response. May trigger compaction.
  void Emitted(uint64_t seq);

  /// Rewrites the journal keeping only live records (atomic swap via
  /// AtomicWriteFile). Called automatically by Open() and by Emitted()
  /// past a threshold; the daemon also calls it on clean shutdown so a
  /// drained journal ends empty.
  [[nodiscard]] Status Compact();

  Stats stats() const;

  const std::string& path() const { return path_; }

 private:
  explicit RequestJournal(std::string path) : path_(std::move(path)) {}

  /// Appends one framed record; fsyncs when `durable`.
  [[nodiscard]] Status AppendLocked(const std::string& body, bool durable);
  [[nodiscard]] Status OpenFdLocked();
  [[nodiscard]] Status CompactLocked();

  /// The still-relevant records for one live seq (admit always, done once
  /// completed) — exactly what compaction preserves.
  struct LiveRecords {
    std::string admit_line;
    std::string done_line;  // empty until Complete
  };

  const std::string path_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  uint64_t next_seq_ = 1;
  std::map<uint64_t, LiveRecords> live_;
  size_t file_bytes_ = 0;
  bool need_newline_recovery_ = false;
  uint64_t delivered_since_compact_ = 0;
  uint64_t appends_ = 0;
  uint64_t append_failures_ = 0;
  uint64_t compactions_ = 0;
};

/// Frames `body` as one journal record line (magic + CRC + body, no
/// trailing newline). Exposed for tests that craft corrupt journals.
std::string FormatJournalRecord(std::string_view body);

/// Parses raw journal `contents` into a replay classification without
/// touching the filesystem. Exposed for tests and for chaos-harness trace
/// analysis.
JournalReplay ClassifyJournal(std::string_view contents);

}  // namespace tdac

#endif  // TDAC_SERVE_JOURNAL_H_
