#ifndef TDAC_SERVE_ENGINE_H_
#define TDAC_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/run_guard.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/dataset_view.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"

namespace tdac {

/// \brief Configuration for a ServeEngine.
struct ServeOptions {
  /// Concurrent request executions (the engine's worker-pool width).
  int workers = 2;

  /// Admitted requests waiting beyond the executing ones. Admission
  /// control bounds total in-flight work at `workers + queue_capacity`;
  /// everything past that is rejected immediately with
  /// StopReason::kOverloaded instead of queueing unboundedly.
  int queue_capacity = 8;

  /// Byte budget for completed clean results kept for repeat requests
  /// (LRU over approximate resident bytes — see ServeResultCache; 0
  /// disables). A byte bound, not an entry count: a handful of
  /// huge-dataset results would evade any count cap.
  size_t result_cache_bytes = 8u << 20;

  /// Byte budget for loaded datasets kept resident, keyed by claims path
  /// (LRU over approximate claim-row bytes). The dataset a request is
  /// using always stays resident even when it alone exceeds the budget,
  /// so the floor is one entry.
  size_t dataset_cache_bytes = 128u << 20;

  /// Per-dataset restriction-view cache capacity (attrs= requests).
  size_t restriction_cache_capacity = 32;

  /// Deadline applied to requests that carry none. 0 = unlimited.
  double default_deadline_ms = 0.0;

  /// When non-empty, TD-AC-mode executions checkpoint into this directory
  /// (per-request slots named from the dataset fingerprint + options
  /// hash) and resume from a matching slot — the warm half of a journal
  /// replay: a re-executed request picks up mid-run state its killed
  /// predecessor persisted (docs/checkpointing.md). Empty disables.
  std::string checkpoint_dir;

  /// Snapshot interval for the per-request checkpoint slots.
  double checkpoint_interval_ms = 250.0;

  /// Test/bench hook: extra synthetic work (cancellation-aware sleep)
  /// inserted into every cold execution, so saturation tests and the load
  /// generator's overload phase can congest the queue deterministically
  /// without giant datasets. 0 in production.
  double execution_delay_ms = 0.0;
};

/// \brief The long-lived serving core behind `tdac_serve`: admission
/// control, deadline propagation, request coalescing, and a
/// fingerprint-keyed result cache over the library's algorithms.
///
/// Life of a request (docs/serving.md):
///
///   1. **Admission.** Submit() bounds in-flight work at
///      `workers + queue_capacity`. Past that it fires the callback
///      immediately with a kRejected / kOverloaded response — the caller
///      may retry later; no work ran. Admission runs under the engine's
///      state mutex, so the bound is exact, not advisory.
///   2. **Deadline.** The request's deadline starts at *admission*.
///      Queue wait spends it: when a worker finally picks the request up,
///      only the remainder is handed to the RunGuard, and an already
///      expired deadline still produces one labeled best-so-far iterate
///      (exit-3 semantics) rather than an unbounded run — an overloaded
///      server degrades per request instead of stalling the queue.
///   3. **Coalescing + cache.** The request's identity is
///      (DatasetFingerprint of the exact data it runs on, algorithm
///      options hash). An identical *in-flight* execution adopts the
///      request as a follower (one execution, N responses); a completed
///      clean result is served from the LRU result cache. Degraded
///      results are never cached.
///   4. **Execution.** The algorithm runs under a RunGuard combining the
///      per-request budget with the engine's shutdown token.
///
/// Exactly one callback fires per Submit(), always: result, rejection, or
/// error. Callbacks run on engine worker threads (or the submitting
/// thread, for rejections) and must not block.
class ServeEngine {
 public:
  using Callback = std::function<void(const ServeResponse&)>;

  /// Counter snapshot, taken under the engine's one state mutex so the
  /// request-lifecycle counters are mutually consistent: every snapshot
  /// satisfies `submitted == rejected + completed + in_flight` exactly
  /// (the TSan-registered consistency test pins this — the counters are
  /// not independently-sampled atomics racing each other). Pool depths
  /// and cache stats are sampled separately and are monitoring-only.
  struct Stats {
    uint64_t submitted = 0;
    uint64_t rejected = 0;       // kOverloaded at admission
    uint64_t completed = 0;      // terminal responses other than rejections
    uint64_t executions = 0;     // cold runs actually performed
    uint64_t cache_hits = 0;     // served from the result cache
    uint64_t coalesced = 0;      // adopted by an identical in-flight run
    uint64_t deadline_degraded = 0;
    uint64_t errors = 0;
    int in_flight = 0;           // admitted, not yet responded
    int pool_queued = 0;         // ThreadPool depth counters
    int pool_active = 0;
    size_t dataset_cache_live = 0;    // resident datasets
    size_t dataset_cache_bytes = 0;   // their approximate resident bytes
    size_t dataset_cache_budget = 0;  // the configured byte budget
    ServeResultCache::Stats result_cache;
  };

  explicit ServeEngine(const ServeOptions& options);

  /// Shuts down (cancelling in-flight guards) and drains the workers.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Admission control; exactly one `callback` call per Submit. After
  /// Shutdown() every Submit is rejected with kCancelled.
  void Submit(ServeRequest request, Callback callback);

  /// Submit + wait: the terminal response for `request`.
  ServeResponse ExecuteBlocking(ServeRequest request);

  /// Graceful shutdown: rejects new submissions (kCancelled) and waits for
  /// every in-flight request to finish normally. Idempotent. The daemon
  /// uses this on stdin EOF / `shutdown` — outstanding work completes
  /// clean.
  void Drain();

  /// Urgent shutdown: Drain() plus cancelling every in-flight RunGuard
  /// first, so runs unwind promptly with labeled best-so-far results.
  /// Idempotent; also invoked by the destructor. A SIGTERM/SIGINT handler
  /// may call `cancellation()->Cancel()` directly (async-signal safe: one
  /// lock-free atomic store) and leave the blocking drain to the main
  /// thread.
  void Shutdown();

  /// The engine-wide cancellation token (every request's guard observes
  /// it).
  CancellationToken* cancellation() { return &cancel_; }

  Stats stats() const;

  const ServeOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One admitted request, stamped with its admission time (the deadline
  /// anchor).
  struct Admitted {
    ServeRequest request;
    Callback callback;
    Clock::time_point admitted_at;
    double deadline_ms = 0.0;  // resolved (request or engine default)
  };

  /// A resident dataset plus its restriction-view cache.
  struct DatasetEntry {
    std::once_flag once;
    Status status;  // load failure, if any
    std::shared_ptr<const Dataset> dataset;
    std::unique_ptr<RestrictionCache> restrictions;
    uint64_t fingerprint = 0;  // of the full dataset
    uint64_t last_used = 0;
    /// Approximate resident bytes, set once the load completes (atomic
    /// because the loader writes it outside the map lock the LRU scan
    /// reads it under).
    std::atomic<size_t> bytes{0};
  };

  /// An in-flight execution; followers share its eventual result.
  struct Flight {
    std::vector<Admitted> followers;
  };

  void Execute(Admitted admitted);

  /// Resolves the dataset entry for `path` through the LRU dataset cache.
  std::shared_ptr<DatasetEntry> DatasetFor(const std::string& path);

  /// Builds the terminal response for one finished run and fires the
  /// callback, accounting for the in-flight slot.
  void Respond(const Admitted& admitted, ServeResponse response);

  const ServeOptions options_;
  const int admission_limit_;

  CancellationToken cancel_;

  /// One mutex owns the request-lifecycle state: admission (the in-flight
  /// gauge vs. the limit), the shutdown flag, and every counter. That
  /// makes the admission bound exact *and* every stats() snapshot
  /// internally consistent — the previous scheme of independent relaxed
  /// atomics let a snapshot observe a request as neither in flight nor
  /// completed. All critical sections are a few arithmetic ops; execution
  /// itself never holds the lock.
  mutable std::mutex state_mutex_;
  std::condition_variable drain_cv_;

  // Guarded by state_mutex_:
  bool shutdown_ = false;
  int in_flight_ = 0;
  /// Responses whose accounting is done but whose callback has not yet
  /// returned — Drain() waits for these too, so "drained" means every
  /// response line was actually written, not just counted.
  int callbacks_outstanding_ = 0;
  uint64_t submitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t executions_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t coalesced_ = 0;
  uint64_t deadline_degraded_ = 0;
  uint64_t errors_ = 0;

  mutable std::mutex datasets_mutex_;
  std::unordered_map<std::string, std::shared_ptr<DatasetEntry>> datasets_;
  uint64_t dataset_tick_ = 0;

  ServeResultCache results_;

  std::mutex flights_mutex_;
  std::map<std::pair<uint64_t, uint64_t>, std::shared_ptr<Flight>> flights_;

  /// Declared last so its destructor (which drains queued tasks) runs
  /// before the state above is torn down.
  std::unique_ptr<ThreadPool> pool_;
};

/// The options-identity half of ResultCacheKey for `request`: algorithm
/// name + mode, deliberately excluding resource limits (see
/// ResultCacheKey). Exposed for tests.
uint64_t ServeOptionsHash(const ServeRequest& request);

}  // namespace tdac

#endif  // TDAC_SERVE_ENGINE_H_
