#ifndef TDAC_SERVE_RESULT_CACHE_H_
#define TDAC_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "td/truth_discovery.h"

namespace tdac {

/// \brief Identity of a `run` request's answer: the dataset (or
/// restriction) content plus the algorithm configuration.
///
/// `fingerprint` is DatasetFingerprint over the exact DatasetLike the run
/// executes on — restricting to a different attribute subset changes the
/// fingerprint, so restrictions never collide with the full dataset.
/// `options_hash` covers algorithm name and mode but deliberately NOT
/// resource limits (deadline, iteration budget, threads): a *clean* result
/// is deterministic and thread-count-invariant by the library's contract,
/// so requests that differ only in budgets share one cached answer.
/// Degraded results are never cached (ServeEngine policy) — a best-so-far
/// iterate under one budget is not the answer under another.
struct ResultCacheKey {
  uint64_t fingerprint = 0;
  uint64_t options_hash = 0;

  bool operator==(const ResultCacheKey& other) const {
    return fingerprint == other.fingerprint &&
           options_hash == other.options_hash;
  }
};

/// Approximate resident size of one cached result: the struct itself plus
/// per-item, per-confidence-entry, and per-source costs (hash-map nodes
/// and small strings included as flat estimates — the point is to make a
/// million-object result weigh a million times a thirty-object one, not to
/// be byte-exact).
size_t ApproxResultBytes(const TruthDiscoveryResult& result);

/// \brief A byte-bounded LRU cache of completed truth-discovery results,
/// shared across serving requests.
///
/// Bounded by approximate resident **bytes** (ApproxResultBytes), not
/// entry count: an entry-count cap lets a handful of huge-dataset results
/// occupy unbounded memory while tiny results are evicted on schedule.
/// Inserting past the budget evicts least-recently-used entries until the
/// total fits; a single result larger than the whole budget is dropped on
/// Put (never cached, counted in `stats().oversized`) rather than allowed
/// to flush everything else.
///
/// Values are immutable and shared: a Get handed out survives eviction for
/// as long as the caller holds it. A budget of 0 disables the cache (every
/// Get misses, Put drops). All methods are thread-safe.
class ServeResultCache {
 public:
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
    size_t oversized = 0;  // Puts dropped for exceeding the whole budget
    size_t live = 0;
    size_t bytes = 0;      // approximate resident bytes
    size_t max_bytes = 0;  // the configured budget
  };

  explicit ServeResultCache(size_t max_bytes) : max_bytes_(max_bytes) {}

  /// The cached result for `key`, or nullptr (recording a miss). A hit
  /// refreshes the entry's LRU position.
  std::shared_ptr<const TruthDiscoveryResult> Get(const ResultCacheKey& key);

  /// Inserts (or refreshes) `key`; evicts least-recently-used entries
  /// until the byte budget is respected. No-op at budget 0; oversized
  /// results (alone larger than the budget) are dropped.
  void Put(const ResultCacheKey& key,
           std::shared_ptr<const TruthDiscoveryResult> result);

  Stats stats() const;

 private:
  struct KeyHash {
    size_t operator()(const ResultCacheKey& key) const {
      // splitmix64-style mix of the two halves.
      uint64_t h = key.fingerprint ^ (key.options_hash * 0x9e3779b97f4a7c15ULL);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<size_t>(h);
    }
  };

  struct Entry {
    std::shared_ptr<const TruthDiscoveryResult> result;
    size_t bytes = 0;
    uint64_t last_used = 0;
  };

  const size_t max_bytes_;
  mutable std::mutex mutex_;
  std::unordered_map<ResultCacheKey, Entry, KeyHash> memo_;
  uint64_t tick_ = 0;
  size_t bytes_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
  size_t oversized_ = 0;
};

}  // namespace tdac

#endif  // TDAC_SERVE_RESULT_CACHE_H_
