#ifndef TDAC_SERVE_PROTOCOL_H_
#define TDAC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/run_guard.h"
#include "common/status.h"
#include "data/ids.h"

namespace tdac {

/// \brief The line-delimited request/response protocol spoken by
/// `tdac_serve` (docs/serving.md).
///
/// One request per line, space-separated `key=value` tokens after the
/// command word; one response line per request, tagged with the request id
/// so responses may arrive out of order. Free-text fields (error messages)
/// are token-escaped via EncodeToken, so a line never contains embedded
/// whitespace surprises and the format stays trivially splittable.
///
///     run id=r1 claims=data.csv algorithm=Accu mode=tdac attrs=0,1,2
///         deadline-ms=250 iteration-budget=1000 threads=2 no-cache=1
///     stats id=s1
///     ping id=p1
///     shutdown id=q1
///
///     ok id=r1 stop=Converged items=1203 iterations=7 ms=41.3
///         cached=0 coalesced=0 degraded=0
///     reject id=r9 reason=Overloaded ms=0.02
///     error id=r3 code=NotFound message=<escaped>
///     pong id=p1
///     stats id=s1 <counter>=<value>...

/// How a `run` request executes its algorithm.
enum class ServeMode {
  kBase = 0,  // the registered algorithm, directly
  kTdac = 1,  // wrapped in TD-AC (partition, per-group base runs)
};

std::string_view ServeModeToString(ServeMode mode);

/// One `run` request.
struct ServeRequest {
  /// Client-chosen correlation id; echoed on the response line. Must be
  /// non-empty and free of whitespace.
  std::string id;

  /// CSV claims file, loaded through the engine's dataset cache.
  std::string claims_path;

  /// Registered algorithm name (tdac_cli algorithms).
  std::string algorithm = "Accu";

  ServeMode mode = ServeMode::kBase;

  /// Optional attribute restriction: run on the zero-copy view of these
  /// attribute ids instead of the whole dataset. Empty = whole dataset.
  std::vector<AttributeId> attributes;

  /// Per-request wall-clock budget, measured from *admission* (queue wait
  /// counts against it, which is what keeps a slow run from blocking the
  /// queue). <= 0 defers to the engine default; 0 there too means
  /// unlimited.
  double deadline_ms = 0.0;

  /// Per-request cap on total outer iterations. <= 0 means unlimited.
  int64_t iteration_budget = 0;

  /// Intra-request parallelism (threads handed to TD-AC's sweep etc.).
  /// Serving concurrency comes from the engine's worker pool, so this
  /// defaults to the exact serial path.
  int threads = 1;

  /// Skip the result cache for this request (both lookup and fill).
  bool no_cache = false;
};

/// Parsed form of one request line.
struct ServeCommand {
  enum class Kind { kRun = 0, kStats, kPing, kShutdown };
  Kind kind = Kind::kPing;
  /// Correlation id (all commands carry one; defaulted when omitted).
  std::string id;
  /// Payload for kRun.
  ServeRequest run;
};

/// Parses one request line. Blank lines and `#` comments yield NotFound
/// (callers skip those); anything else malformed yields InvalidArgument
/// naming the offending token.
[[nodiscard]] Result<ServeCommand> ParseCommandLine(std::string_view line);

/// Serializes a `run` request back into its line form (load generators,
/// tests; ParseCommandLine round-trips it).
std::string FormatRunLine(const ServeRequest& request);

/// Terminal outcome of one request. Exactly one response is produced per
/// submitted request — this is the admission-control contract the
/// saturation test pins.
struct ServeResponse {
  enum class Outcome {
    kOk = 0,      // a result exists (possibly degraded best-so-far)
    kRejected,    // shed by admission control before any work ran
    kError,       // the request itself failed (bad path, unknown algorithm)
  };

  std::string id;
  Outcome outcome = Outcome::kOk;

  /// kError details (code + message).
  Status status;

  /// kOk: why the run stopped (kDeadline etc. label best-so-far results).
  /// kRejected: always kOverloaded (or kCancelled during shutdown).
  StopReason stop_reason = StopReason::kConverged;

  /// kOk: data items resolved.
  size_t items = 0;

  /// kOk: outer iterations executed.
  int iterations = 0;

  /// Submission-to-response latency as observed by the engine.
  double latency_ms = 0.0;

  /// Served from the fingerprint-keyed result cache.
  bool cached = false;

  /// Attached to an identical in-flight execution instead of running.
  bool coalesced = false;

  /// Produced by journal replay after a daemon restart (either a re-
  /// executed pending request or a re-emitted recorded response whose
  /// original delivery was unconfirmed). A client that saw the original
  /// should dedup by id; the flag is why duplicates are detectable.
  bool replayed = false;

  bool degraded() const {
    return outcome == Outcome::kOk && IsDegraded(stop_reason);
  }
};

/// One response line ("ok ..." / "reject ..." / "error ...").
std::string FormatResponseLine(const ServeResponse& response);

/// Inverse of FormatResponseLine (tests, load generators driving the
/// daemon over a pipe). "pong"/"stats" lines yield NotFound.
[[nodiscard]] Result<ServeResponse> ParseResponseLine(std::string_view line);

}  // namespace tdac

#endif  // TDAC_SERVE_PROTOCOL_H_
