#include "clustering/distance.h"

#include <cmath>

#include "common/logging.h"

namespace tdac {

double HammingDistance(const FeatureVector& a, const FeatureVector& b) {
  TDAC_CHECK(a.size() == b.size()) << "HammingDistance: size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc;
}

double SquaredEuclideanDistance(const FeatureVector& a,
                                const FeatureVector& b) {
  TDAC_CHECK(a.size() == b.size()) << "SquaredEuclidean: size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double EuclideanDistance(const FeatureVector& a, const FeatureVector& b) {
  return std::sqrt(SquaredEuclideanDistance(a, b));
}

double MaskedHammingDistance(const FeatureVector& a, const FeatureVector& b,
                             const std::vector<uint8_t>& mask_a,
                             const std::vector<uint8_t>& mask_b) {
  TDAC_CHECK(a.size() == b.size() && a.size() == mask_a.size() &&
             a.size() == mask_b.size())
      << "MaskedHammingDistance: size mismatch";
  // Branchless: whether both sources observe a cell is data-dependent and
  // close to incompressible for the predictor, so the masked accumulation
  // multiplies by the 0/1 joint mask instead of branching and the loop
  // body is straight-line code. Adding `0.0 * |a-b|` for an unobserved cell is
  // bit-identical to skipping it (the accumulator is a non-negative sum of
  // finite terms; truth vectors are 0/1, so |a-b| is never NaN).
  double acc = 0.0;
  size_t observed = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const uint8_t m = mask_a[i] & mask_b[i];
    acc += static_cast<double>(m) * std::fabs(a[i] - b[i]);
    observed += m;
  }
  if (observed == 0) return 0.5 * static_cast<double>(a.size());
  return acc * static_cast<double>(a.size()) / static_cast<double>(observed);
}

double Distance(DistanceMetric metric, const FeatureVector& a,
                const FeatureVector& b) {
  switch (metric) {
    case DistanceMetric::kHamming:
      return HammingDistance(a, b);
    case DistanceMetric::kSquaredEuclidean:
      return SquaredEuclideanDistance(a, b);
    case DistanceMetric::kEuclidean:
      return EuclideanDistance(a, b);
  }
  return 0.0;
}

}  // namespace tdac
