#include "clustering/hierarchical.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace tdac {

Dendrogram::Dendrogram(int num_points, std::vector<Merge> merges)
    : num_points_(num_points), merges_(std::move(merges)) {
  TDAC_CHECK(static_cast<int>(merges_.size()) == num_points_ - 1)
      << "a dendrogram over n points has exactly n - 1 merges";
}

Result<std::vector<int>> Dendrogram::CutToK(int k) const {
  if (k < 1 || k > num_points_) {
    return Status::InvalidArgument("CutToK: k must be in [1, n]");
  }
  // Apply the first n - k merges with a union-find over cluster ids.
  const int total_ids = 2 * num_points_ - 1;
  std::vector<int> parent(static_cast<size_t>(total_ids));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  const int merges_to_apply = num_points_ - k;
  for (int m = 0; m < merges_to_apply; ++m) {
    int target = num_points_ + m;
    parent[static_cast<size_t>(find(merges_[static_cast<size_t>(m)].left))] =
        target;
    parent[static_cast<size_t>(find(merges_[static_cast<size_t>(m)].right))] =
        target;
  }
  std::vector<int> assignment(static_cast<size_t>(num_points_));
  std::vector<int> label_of(static_cast<size_t>(total_ids), -1);
  int next_label = 0;
  for (int i = 0; i < num_points_; ++i) {
    int root = find(i);
    if (label_of[static_cast<size_t>(root)] < 0) {
      label_of[static_cast<size_t>(root)] = next_label++;
    }
    assignment[static_cast<size_t>(i)] = label_of[static_cast<size_t>(root)];
  }
  TDAC_CHECK(next_label == k) << "cut produced " << next_label
                              << " clusters, expected " << k;
  return assignment;
}

Result<Dendrogram> AgglomerativeClusterFromDistances(
    const std::vector<std::vector<double>>& distances,
    const AgglomerativeOptions& options) {
  const size_t n = distances.size();
  if (n == 0) return Status::InvalidArgument("Agglomerative: no points");
  for (const auto& row : distances) {
    if (row.size() != n) {
      return Status::InvalidArgument(
          "Agglomerative: distance matrix not square");
    }
  }
  if (n == 1) return Dendrogram(1, {});

  // Active clusters: id, member leaves. New clusters get ids n, n+1, ...
  struct Cluster {
    int id;
    std::vector<int> members;
  };
  std::vector<Cluster> active;
  active.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    active.push_back({static_cast<int>(i), {static_cast<int>(i)}});
  }

  auto linkage_distance = [&](const Cluster& a, const Cluster& b) {
    double best = options.linkage == Linkage::kComplete
                      ? 0.0
                      : std::numeric_limits<double>::infinity();
    double sum = 0.0;
    for (int i : a.members) {
      for (int j : b.members) {
        double d = distances[static_cast<size_t>(i)][static_cast<size_t>(j)];
        sum += d;
        if (options.linkage == Linkage::kSingle) {
          best = std::min(best, d);
        } else if (options.linkage == Linkage::kComplete) {
          best = std::max(best, d);
        }
      }
    }
    if (options.linkage == Linkage::kAverage) {
      return sum / (static_cast<double>(a.members.size()) *
                    static_cast<double>(b.members.size()));
    }
    return best;
  };

  std::vector<Dendrogram::Merge> merges;
  merges.reserve(n - 1);
  int next_id = static_cast<int>(n);
  while (active.size() > 1) {
    size_t best_a = 0;
    size_t best_b = 1;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < active.size(); ++a) {
      for (size_t b = a + 1; b < active.size(); ++b) {
        double d = linkage_distance(active[a], active[b]);
        if (d < best_d) {
          best_d = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    Dendrogram::Merge merge;
    merge.left = active[best_a].id;
    merge.right = active[best_b].id;
    merge.distance = best_d;
    merges.push_back(merge);

    Cluster merged;
    merged.id = next_id++;
    merged.members = std::move(active[best_a].members);
    merged.members.insert(merged.members.end(),
                          active[best_b].members.begin(),
                          active[best_b].members.end());
    // Remove b first (larger index), then a.
    active.erase(active.begin() + static_cast<long>(best_b));
    active.erase(active.begin() + static_cast<long>(best_a));
    active.push_back(std::move(merged));
  }
  return Dendrogram(static_cast<int>(n), std::move(merges));
}

Result<Dendrogram> AgglomerativeCluster(
    const std::vector<FeatureVector>& points,
    const AgglomerativeOptions& options) {
  const size_t n = points.size();
  if (n == 0) return Status::InvalidArgument("Agglomerative: no points");
  for (const FeatureVector& p : points) {
    if (p.size() != points[0].size()) {
      return Status::InvalidArgument(
          "Agglomerative: inconsistent point dimensions");
    }
  }
  std::vector<std::vector<double>> distances(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = Distance(options.metric, points[i], points[j]);
      distances[i][j] = d;
      distances[j][i] = d;
    }
  }
  return AgglomerativeClusterFromDistances(distances, options);
}

}  // namespace tdac
