#ifndef TDAC_CLUSTERING_HIERARCHICAL_H_
#define TDAC_CLUSTERING_HIERARCHICAL_H_

#include <vector>

#include "clustering/distance.h"
#include "common/result.h"

namespace tdac {

/// \brief Linkage criteria for agglomerative clustering.
enum class Linkage {
  kSingle,    // min pairwise distance between clusters
  kComplete,  // max pairwise distance
  kAverage,   // mean pairwise distance (UPGMA)
};

/// \brief Options for AgglomerativeCluster.
struct AgglomerativeOptions {
  DistanceMetric metric = DistanceMetric::kHamming;
  Linkage linkage = Linkage::kAverage;
};

/// \brief A full agglomerative merge tree over n points.
///
/// Built once, it can be cut at any level: `CutToK(k)` returns the
/// assignment with exactly k clusters (labels compacted to [0, k)).
/// TD-AC's alternative clustering backend sweeps k by cutting this tree,
/// which amortizes the O(n^3) build across the whole silhouette sweep.
class Dendrogram {
 public:
  struct Merge {
    int left = 0;       // cluster ids being merged (see below)
    int right = 0;
    double distance = 0.0;
  };

  /// Cluster ids: leaves are [0, n); the i-th merge creates cluster n + i.
  Dendrogram(int num_points, std::vector<Merge> merges);

  int num_points() const { return num_points_; }
  const std::vector<Merge>& merges() const { return merges_; }

  /// Assignment with exactly k clusters (1 <= k <= n): the last k - 1
  /// merges are undone. Labels are compacted to [0, k) in order of first
  /// appearance.
  [[nodiscard]] Result<std::vector<int>> CutToK(int k) const;

 private:
  int num_points_;
  std::vector<Merge> merges_;
};

/// Builds the merge tree bottom-up with the requested linkage. O(n^3),
/// intended for attribute counts (tens to low hundreds of points).
[[nodiscard]] Result<Dendrogram> AgglomerativeCluster(
    const std::vector<FeatureVector>& points,
    const AgglomerativeOptions& options);

/// Same, over a precomputed symmetric distance matrix.
[[nodiscard]] Result<Dendrogram> AgglomerativeClusterFromDistances(
    const std::vector<std::vector<double>>& distances,
    const AgglomerativeOptions& options);

}  // namespace tdac

#endif  // TDAC_CLUSTERING_HIERARCHICAL_H_
