#ifndef TDAC_CLUSTERING_KMEANS_H_
#define TDAC_CLUSTERING_KMEANS_H_

#include <vector>

#include "clustering/distance.h"
#include "common/result.h"

namespace tdac {

/// \brief Options for Lloyd's k-means with k-means++ seeding.
struct KMeansOptions {
  /// Number of clusters; must satisfy 1 <= k <= #points.
  int k = 2;

  /// Lloyd iteration cap per restart.
  int max_iterations = 100;

  /// Independent seeded restarts; the run with the lowest inertia wins.
  int num_restarts = 8;

  /// RNG seed for k-means++ seeding (restart r uses seed + r).
  uint64_t seed = 42;

  /// Early stop when inertia improves by less than this between iterations.
  double tolerance = 1e-9;
};

/// \brief Result of a k-means run.
struct KMeansResult {
  /// Cluster index in [0, k) per input point.
  std::vector<int> assignment;

  /// Final centroids (means of assigned points).
  std::vector<FeatureVector> centroids;

  /// Sum over points of squared Euclidean distance to their centroid
  /// (the paper's within-cluster "Inertia" objective, Eq. 3).
  double inertia = 0.0;

  /// Lloyd iterations of the winning restart.
  int iterations = 0;

  /// Whether the winning restart's Lloyd loop stopped on its own
  /// (assignment fixpoint or inertia tolerance) rather than hitting
  /// max_iterations with the assignment still moving.
  bool converged = false;

  /// Points per cluster.
  std::vector<int> cluster_sizes;
};

/// Runs k-means over `points`. All points must share one dimension.
/// Deterministic for a fixed (points, options) pair.
[[nodiscard]]
Result<KMeansResult> KMeans(const std::vector<FeatureVector>& points,
                            const KMeansOptions& options);

}  // namespace tdac

#endif  // TDAC_CLUSTERING_KMEANS_H_
