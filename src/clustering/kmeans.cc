#include "clustering/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/random.h"

namespace tdac {

namespace {

/// k-means++ seeding: first centroid uniform, each next centroid drawn with
/// probability proportional to squared distance to the nearest chosen one.
std::vector<FeatureVector> SeedPlusPlus(const std::vector<FeatureVector>& points,
                                        int k, Rng* rng) {
  std::vector<FeatureVector> centroids;
  centroids.reserve(static_cast<size_t>(k));
  centroids.push_back(points[rng->NextBounded(points.size())]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids.size()) < k) {
    for (size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i],
                       SquaredEuclideanDistance(points[i], centroids.back()));
    }
    size_t pick = rng->NextWeighted(d2);
    centroids.push_back(points[pick]);
  }
  return centroids;
}

struct LloydOutcome {
  std::vector<int> assignment;
  std::vector<FeatureVector> centroids;
  double inertia = 0.0;
  int iterations = 0;
  bool converged = false;
};

LloydOutcome RunLloyd(const std::vector<FeatureVector>& points, int k,
                      const KMeansOptions& options, Rng* rng) {
  const size_t n = points.size();
  const size_t dim = points[0].size();
  LloydOutcome out;
  out.centroids = SeedPlusPlus(points, k, rng);
  out.assignment.assign(n, -1);
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    out.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = SquaredEuclideanDistance(points[i], out.centroids[0]);
      for (int c = 1; c < k; ++c) {
        double d = SquaredEuclideanDistance(points[i],
                                            out.centroids[static_cast<size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (out.assignment[i] != best) {
        out.assignment[i] = best;
        changed = true;
      }
      inertia += best_d;
    }
    out.inertia = inertia;

    // Update step.
    std::vector<FeatureVector> sums(static_cast<size_t>(k),
                                    FeatureVector(dim, 0.0));
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      auto& sum = sums[static_cast<size_t>(out.assignment[i])];
      for (size_t d = 0; d < dim; ++d) sum[d] += points[i][d];
      ++counts[static_cast<size_t>(out.assignment[i])];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Empty-cluster repair: re-seed at the point farthest from its
        // centroid.
        size_t farthest = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          double d = SquaredEuclideanDistance(
              points[i],
              out.centroids[static_cast<size_t>(out.assignment[i])]);
          if (d > far_d) {
            far_d = d;
            farthest = i;
          }
        }
        out.centroids[static_cast<size_t>(c)] = points[farthest];
        changed = true;
        continue;
      }
      auto& centroid = out.centroids[static_cast<size_t>(c)];
      const auto& sum = sums[static_cast<size_t>(c)];
      for (size_t d = 0; d < dim; ++d) {
        centroid[d] = sum[d] / counts[static_cast<size_t>(c)];
      }
    }

    if (!changed) {
      out.converged = true;
      break;
    }
    if (prev_inertia - inertia >= 0 &&
        prev_inertia - inertia < options.tolerance && iter > 0) {
      out.converged = true;
      break;
    }
    prev_inertia = inertia;
  }

  // Recompute the final inertia against the final centroids.
  double inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    inertia += SquaredEuclideanDistance(
        points[i], out.centroids[static_cast<size_t>(out.assignment[i])]);
  }
  out.inertia = inertia;
  return out;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<FeatureVector>& points,
                            const KMeansOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("KMeans: no points");
  }
  if (options.k < 1 || options.k > static_cast<int>(points.size())) {
    return Status::InvalidArgument(
        "KMeans: k must be in [1, #points], got k=" +
        std::to_string(options.k) + " with " + std::to_string(points.size()) +
        " points");
  }
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("KMeans: inconsistent point dimensions");
    }
  }
  if (dim == 0) {
    return Status::InvalidArgument("KMeans: zero-dimensional points");
  }

  const int restarts = std::max(1, options.num_restarts);
  LloydOutcome best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < restarts; ++r) {
    Rng rng(options.seed + static_cast<uint64_t>(r));
    LloydOutcome attempt = RunLloyd(points, options.k, options, &rng);
    if (attempt.inertia < best.inertia) best = std::move(attempt);
  }

  KMeansResult result;
  result.assignment = std::move(best.assignment);
  result.centroids = std::move(best.centroids);
  result.inertia = best.inertia;
  result.iterations = best.iterations;
  result.converged = best.converged;
  result.cluster_sizes.assign(static_cast<size_t>(options.k), 0);
  for (int a : result.assignment) {
    ++result.cluster_sizes[static_cast<size_t>(a)];
  }
  return result;
}

}  // namespace tdac
