#include "clustering/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math_util.h"

namespace tdac {

Result<SilhouetteResult> SilhouetteFromDistances(
    const std::vector<std::vector<double>>& distances,
    const std::vector<int>& assignment, int k) {
  const size_t n = distances.size();
  if (n == 0) return Status::InvalidArgument("Silhouette: no points");
  for (const auto& row : distances) {
    if (row.size() != n) {
      return Status::InvalidArgument("Silhouette: distance matrix not square");
    }
  }
  // A single NaN/inf/negative cell would otherwise propagate silently into
  // every downstream score (and ArgMax comparisons over NaN are
  // order-dependent), so a malformed matrix is refused outright. Symmetry
  // is part of the same contract: a(i) and b(i) read row i only, so an
  // asymmetric matrix would score the same partition differently depending
  // on which point of a pair asks.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double d = distances[i][j];
      if (!std::isfinite(d) || d < 0.0) {
        return Status::InvalidArgument(
            "Silhouette: distances must be finite and non-negative");
      }
      if (distances[j][i] != d) {
        return Status::InvalidArgument(
            "Silhouette: distance matrix must be symmetric");
      }
    }
  }
  if (assignment.size() != n) {
    return Status::InvalidArgument("Silhouette: assignment size mismatch");
  }
  if (k < 2) {
    return Status::InvalidArgument(
        "Silhouette requires k >= 2 (separation is undefined otherwise)");
  }
  std::vector<int> sizes(static_cast<size_t>(k), 0);
  for (int a : assignment) {
    if (a < 0 || a >= k) {
      return Status::InvalidArgument("Silhouette: assignment out of range");
    }
    ++sizes[static_cast<size_t>(a)];
  }
  for (int c = 0; c < k; ++c) {
    if (sizes[static_cast<size_t>(c)] == 0) {
      return Status::InvalidArgument("Silhouette: cluster " +
                                     std::to_string(c) + " is empty");
    }
  }

  SilhouetteResult result;
  result.point_scores.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const int own = assignment[i];
    if (sizes[static_cast<size_t>(own)] == 1) {
      result.point_scores[i] = 0.0;  // singleton convention
      continue;
    }
    // Mean distance from point i to every cluster.
    std::vector<double> mean_to(static_cast<size_t>(k), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      mean_to[static_cast<size_t>(assignment[j])] += distances[i][j];
    }
    double alpha = mean_to[static_cast<size_t>(own)] /
                   static_cast<double>(sizes[static_cast<size_t>(own)] - 1);
    double beta = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      if (c == own) continue;
      beta = std::min(beta,
                      mean_to[static_cast<size_t>(c)] /
                          static_cast<double>(sizes[static_cast<size_t>(c)]));
    }
    double denom = std::max(alpha, beta);
    result.point_scores[i] = denom > 0 ? (beta - alpha) / denom : 0.0;
  }

  result.cluster_scores.assign(static_cast<size_t>(k), 0.0);
  for (size_t i = 0; i < n; ++i) {
    result.cluster_scores[static_cast<size_t>(assignment[i])] +=
        result.point_scores[i];
  }
  for (int c = 0; c < k; ++c) {
    result.cluster_scores[static_cast<size_t>(c)] /=
        static_cast<double>(sizes[static_cast<size_t>(c)]);
  }
  result.partition_score = Mean(result.cluster_scores);
  result.mean_point_score = Mean(result.point_scores);
  return result;
}

Result<SilhouetteResult> Silhouette(const std::vector<FeatureVector>& points,
                                    const std::vector<int>& assignment, int k,
                                    DistanceMetric metric) {
  const size_t n = points.size();
  if (n == 0) return Status::InvalidArgument("Silhouette: no points");
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = Distance(metric, points[i], points[j]);
      dist[i][j] = d;
      dist[j][i] = d;
    }
  }
  return SilhouetteFromDistances(dist, assignment, k);
}

}  // namespace tdac
