#ifndef TDAC_CLUSTERING_SILHOUETTE_H_
#define TDAC_CLUSTERING_SILHOUETTE_H_

#include <vector>

#include "clustering/distance.h"
#include "common/result.h"

namespace tdac {

/// \brief Silhouette diagnostics for a clustering, following the paper's
/// Eqs. 5-7.
///
/// For point i in cluster g: cohesion alpha(i) is the mean distance to the
/// other members of g, separation beta(i) the smallest mean distance to any
/// other cluster, and CS(i) = (beta - alpha) / max(alpha, beta). A singleton
/// cluster's point has CS = 0 by the usual convention.
struct SilhouetteResult {
  /// CS per point (Eq. 5).
  std::vector<double> point_scores;

  /// CS per cluster: mean over its points (Eq. 6).
  std::vector<double> cluster_scores;

  /// The paper's partition score CS(P): mean of the cluster scores (Eq. 7).
  /// Note this macro-average weights every cluster equally, unlike the
  /// conventional mean-over-points silhouette.
  double partition_score = 0.0;

  /// Conventional silhouette: mean of point_scores. Exposed for ablations.
  double mean_point_score = 0.0;
};

/// Computes the silhouette of `assignment` (values in [0, k)) over `points`
/// with the given metric (the paper uses Hamming on truth vectors).
/// Fails when k < 2, assignment size mismatches, or a cluster is empty.
[[nodiscard]]
Result<SilhouetteResult> Silhouette(const std::vector<FeatureVector>& points,
                                    const std::vector<int>& assignment, int k,
                                    DistanceMetric metric =
                                        DistanceMetric::kHamming);

/// Same computation over a precomputed symmetric distance matrix (used by
/// TD-AC's sparse-aware mode, whose masked distance needs per-point masks).
[[nodiscard]] Result<SilhouetteResult> SilhouetteFromDistances(
    const std::vector<std::vector<double>>& distances,
    const std::vector<int>& assignment, int k);

}  // namespace tdac

#endif  // TDAC_CLUSTERING_SILHOUETTE_H_
