#ifndef TDAC_CLUSTERING_DISTANCE_H_
#define TDAC_CLUSTERING_DISTANCE_H_

#include <cstdint>
#include <vector>

namespace tdac {

/// Dense feature vector; attribute truth vectors store 0/1 coordinates but
/// centroids are real-valued, so everything is double.
using FeatureVector = std::vector<double>;

/// L1 distance; on binary vectors this is exactly the paper's Hamming
/// distance (Eq. 2).
double HammingDistance(const FeatureVector& a, const FeatureVector& b);

/// Squared Euclidean distance. On binary vectors it coincides with Hamming.
double SquaredEuclideanDistance(const FeatureVector& a, const FeatureVector& b);

/// Euclidean distance.
double EuclideanDistance(const FeatureVector& a, const FeatureVector& b);

/// Sparse-aware Hamming: compares only coordinates observed on both sides
/// (mask value != 0) and rescales the sum to the full dimension; the
/// distance of two vectors with no common observed coordinate is half the
/// dimension (maximal uncertainty). This is the conclusion's missing-value
/// extension, used by TD-AC's sparse mode on low-DCR data.
double MaskedHammingDistance(const FeatureVector& a, const FeatureVector& b,
                             const std::vector<uint8_t>& mask_a,
                             const std::vector<uint8_t>& mask_b);

/// Metric selector used by the clustering entry points.
enum class DistanceMetric {
  kHamming,
  kSquaredEuclidean,
  kEuclidean,
};

double Distance(DistanceMetric metric, const FeatureVector& a,
                const FeatureVector& b);

}  // namespace tdac

#endif  // TDAC_CLUSTERING_DISTANCE_H_
