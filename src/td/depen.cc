#include "td/depen.h"

// Depen is a configuration of the Accu engine; all logic lives in accu.cc.
// This translation unit exists so the class has a home for future
// specializations and to anchor its vtable.

namespace tdac {}  // namespace tdac
