#ifndef TDAC_TD_TRUTH_FINDER_H_
#define TDAC_TD_TRUTH_FINDER_H_

#include <memory>

#include "td/truth_discovery.h"
#include "td/value_similarity.h"

namespace tdac {

/// \brief Options for TruthFinder (Yin, Han & Yu, TKDE 2008).
struct TruthFinderOptions {
  TruthDiscoveryOptions base;

  /// Dampening factor gamma in the logistic confidence
  /// s(v) = 1 / (1 + exp(-gamma * sigma*(v))).
  double dampening = 0.3;

  /// Weight rho of the implication adjustment
  /// sigma*(v) = sigma(v) + rho * sum_{v' != v} imp(v' -> v) sigma(v').
  double implication_weight = 0.5;

  /// Base similarity subtracted when deriving implication from similarity:
  /// imp(v' -> v) = sim(v', v) - base_similarity (values dissimilar beyond
  /// the base level weaken each other, as in the original paper).
  double base_similarity = 0.5;

  /// Initial source trustworthiness t0 (the original paper uses 0.9).
  double initial_trust = 0.9;

  /// Convergence is declared when 1 - cosine(t_new, t_old) drops below the
  /// base convergence_threshold.
  const ValueSimilarity* similarity = &GetDefaultSimilarity();
};

/// \brief TruthFinder: Bayesian-inspired iterative trust/confidence
/// propagation with inter-value implication.
///
/// Per iteration: source trust t(s) maps to score tau(s) = -ln(1 - t(s));
/// value confidence scores accumulate supporter taus, get adjusted by the
/// implications of competing values, pass through a dampened logistic, and
/// new trust is the mean confidence of each source's claims.
class TruthFinder : public TruthDiscovery {
 public:
  explicit TruthFinder(TruthFinderOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "TruthFinder"; }

  const TruthFinderOptions& options() const { return options_; }

 protected:
  [[nodiscard]]
  Result<TruthDiscoveryResult> DiscoverGuarded(
      const DatasetLike& data, const RunGuard& guard) const override;

 private:
  TruthFinderOptions options_;
};

}  // namespace tdac

#endif  // TDAC_TD_TRUTH_FINDER_H_
