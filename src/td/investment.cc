#include "td/investment.h"

#include <algorithm>
#include <cmath>

namespace tdac {

void Investment::BeliefsFromInvestments(const std::vector<double>& collected,
                                        std::vector<double>* beliefs) const {
  beliefs->resize(collected.size());
  for (size_t v = 0; v < collected.size(); ++v) {
    (*beliefs)[v] = std::pow(collected[v], options_.exponent);
  }
}

void PooledInvestment::BeliefsFromInvestments(
    const std::vector<double>& collected, std::vector<double>* beliefs) const {
  beliefs->resize(collected.size());
  double total_collected = 0.0;
  double total_grown = 0.0;
  std::vector<double> grown(collected.size());
  for (size_t v = 0; v < collected.size(); ++v) {
    grown[v] = std::pow(collected[v], options_.exponent);
    total_collected += collected[v];
    total_grown += grown[v];
  }
  for (size_t v = 0; v < collected.size(); ++v) {
    (*beliefs)[v] =
        total_grown > 0.0 ? total_collected * grown[v] / total_grown : 0.0;
  }
}

Result<TruthDiscoveryResult> Investment::DiscoverGuarded(
    const DatasetLike& data, const RunGuard& guard) const {
  if (data.num_claims() == 0) {
    return Status::InvalidArgument("Investment: empty dataset");
  }
  const auto items = td_internal::GroupClaimsByItem(data);
  const size_t num_sources = static_cast<size_t>(data.num_sources());

  std::vector<double> claim_counts(num_sources, 0.0);
  for (const auto& item : items) {
    for (const auto& supporters : item.supporters) {
      for (SourceId s : supporters) {
        claim_counts[static_cast<size_t>(s)] += 1.0;
      }
    }
  }

  std::vector<double> trust(num_sources, 1.0);
  std::vector<std::vector<double>> belief(items.size());

  TruthDiscoveryResult result;
  result.stop_reason = StopReason::kMaxIterations;
  const int max_iter = std::max(1, options_.base.max_iterations);
  for (int iter = 0; iter < max_iter; ++iter) {
    if (iter > 0) {
      if (auto stop = guard.OnIteration()) {
        result.stop_reason = *stop;
        break;
      }
    }
    ++result.iterations;

    // Per-source investment per claim.
    std::vector<double> invest(num_sources, 0.0);
    for (size_t s = 0; s < num_sources; ++s) {
      invest[s] = claim_counts[s] > 0.0 ? trust[s] / claim_counts[s] : 0.0;
    }

    // Collected investment and beliefs per item.
    std::vector<std::vector<double>> collected(items.size());
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      collected[it].assign(item.values.size(), 0.0);
      for (size_t v = 0; v < item.values.size(); ++v) {
        for (SourceId s : item.supporters[v]) {
          collected[it][v] += invest[static_cast<size_t>(s)];
        }
      }
      BeliefsFromInvestments(collected[it], &belief[it]);
    }

    // Pay back investors proportionally to their share.
    std::vector<double> new_trust(num_sources, 0.0);
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      for (size_t v = 0; v < item.values.size(); ++v) {
        if (collected[it][v] <= 0.0) continue;
        for (SourceId s : item.supporters[v]) {
          new_trust[static_cast<size_t>(s)] +=
              belief[it][v] * invest[static_cast<size_t>(s)] /
              collected[it][v];
        }
      }
    }
    double mx = 0.0;
    for (double t : new_trust) mx = std::max(mx, t);
    if (mx > 0.0) {
      for (double& t : new_trust) t /= mx;
    }

    if (!AllFinite(new_trust) || !AllFinite(belief)) {
      // The growth exponent can overflow pow(); keep the last finite trust.
      result.stop_reason = StopReason::kNonFinite;
      break;
    }
    double delta = td_internal::MeanAbsDelta(trust, new_trust);
    trust = std::move(new_trust);
    if (delta < options_.base.convergence_threshold && iter > 0) {
      result.converged = true;
      result.stop_reason = StopReason::kConverged;
      break;
    }
  }

  for (size_t it = 0; it < items.size(); ++it) {
    const auto& item = items[it];
    size_t best = td_internal::ArgMax(belief[it]);
    ObjectId o = ObjectFromKey(item.key);
    AttributeId a = AttributeFromKey(item.key);
    result.predicted.Set(o, a, item.values[best]);
    double total = 0.0;
    for (double b : belief[it]) total += b;
    result.confidence[item.key] = total > 0.0 ? belief[it][best] / total : 0.0;
  }
  result.source_trust = std::move(trust);
  return result;
}

}  // namespace tdac
