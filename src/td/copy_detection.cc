#include "td/copy_detection.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace tdac {

DependenceMatrix DetectCopying(
    const std::vector<td_internal::ItemConflict>& items,
    const std::vector<size_t>& selected, const std::vector<double>& accuracy,
    const CopyDetectionParams& params) {
  TDAC_CHECK(items.size() == selected.size())
      << "DetectCopying: selected size mismatch";
  const int num_sources = static_cast<int>(accuracy.size());
  DependenceMatrix matrix(num_sources);

  // Accumulate kt/kf/kd per unordered source pair over all items. This is
  // the hottest loop of the whole Accu family (every source pair on every
  // item, every iteration), so the counts live in dense S*S matrices — a
  // hash map here costs a hash + probe per increment and dominated whole
  // benchmark profiles. S is bounded by the real datasets (hundreds), so
  // the dense matrices stay small. One flat int array per count kind
  // (structure-of-arrays, not an array of 3-count structs): each inner
  // loop touches exactly one kind, so a 4-byte stride triples the useful
  // cache density, and hoisting the kind choice out of the agree loop
  // removes the per-pair branch.
  const size_t s_count = static_cast<size_t>(num_sources);
  std::vector<int> same_true(s_count * s_count, 0);
  std::vector<int> same_false(s_count * s_count, 0);
  std::vector<int> different(s_count * s_count, 0);

  for (size_t it = 0; it < items.size(); ++it) {
    const auto& item = items[it];
    const size_t true_index = selected[it];
    // Sources sharing a value agree; sources with different values differ.
    for (size_t v = 0; v < item.values.size(); ++v) {
      const auto& sup = item.supporters[v];
      // Supporters are ascending, so sup[i] < sup[j] for i < j and the
      // upper-triangle cell needs no operand swap.
      int* same = (v == true_index) ? same_true.data() : same_false.data();
      for (size_t i = 0; i < sup.size(); ++i) {
        const size_t base = static_cast<size_t>(sup[i]) * s_count;
        for (size_t j = i + 1; j < sup.size(); ++j) {
          ++same[base + static_cast<size_t>(sup[j])];
        }
      }
      for (size_t w = v + 1; w < item.values.size(); ++w) {
        for (SourceId si : sup) {
          for (SourceId sj : item.supporters[w]) {
            const SourceId lo = si < sj ? si : sj;
            const SourceId hi = si < sj ? sj : si;
            ++different[static_cast<size_t>(lo) * s_count +
                        static_cast<size_t>(hi)];
          }
        }
      }
    }
  }

  const double n = std::max(1, params.n_false_values);
  const double c = Clamp(params.copy_rate, 1e-3, 1.0 - 1e-3);
  const double alpha = Clamp(params.alpha, 1e-6, 1.0 - 1e-6);

  struct PairCounts {
    int same_true;   // kt
    int same_false;  // kf
    int different;   // kd
  };
  for (SourceId a = 0; a < num_sources; ++a) {
    for (SourceId b = a + 1; b < num_sources; ++b) {
      const size_t cell =
          static_cast<size_t>(a) * s_count + static_cast<size_t>(b);
      const PairCounts pc{same_true[cell], same_false[cell], different[cell]};
      // A pair that never co-claimed an item carries no evidence (the hash
      // map never held an entry for it); leave the matrix default.
      if (pc.same_true == 0 && pc.same_false == 0 && pc.different == 0) {
        continue;
      }
      // Shared accuracy for the pair, as in the original model.
      double acc = 0.5 * (accuracy[static_cast<size_t>(a)] +
                          accuracy[static_cast<size_t>(b)]);
      acc = Clamp(acc, params.epsilon_floor, 1.0 - params.epsilon_floor);
      const double err = 1.0 - acc;
  
      // Independent model: both true = A^2; both same false = (1-A)^2 / n;
      // different = remainder.
      double pt_ind = acc * acc;
      double pf_ind = err * err / n;
      double pd_ind = std::max(1.0 - pt_ind - pf_ind, params.epsilon_floor);
  
      // Dependent model: with probability c the second source copies (hence
      // always agrees, and the shared value is true with probability A);
      // with probability 1-c it acts independently. A copied false value is
      // the *same* false value, so the copied error mass lands entirely on
      // same-false (no 1/n spreading).
      double pt_dep = acc * c + pt_ind * (1.0 - c);
      double pf_dep = err * c + pf_ind * (1.0 - c);
      double pd_dep = std::max(1.0 - pt_dep - pf_dep, params.epsilon_floor);
  
      // Evidence for dependence, in log space.
      double log_evidence = 0.0;
      if (params.count_true_agreement) {
        // Strict Dong-2009 joint likelihood over (kt, kf, kd).
        double log_ind = pc.same_true * SafeLog(pt_ind) +
                         pc.same_false * SafeLog(pf_ind) +
                         pc.different * SafeLog(pd_ind);
        double log_dep = pc.same_true * SafeLog(pt_dep) +
                         pc.same_false * SafeLog(pf_dep) +
                         pc.different * SafeLog(pd_dep);
        log_evidence = log_dep - log_ind;
      } else {
        // Robust mode: compare the false-fraction among agreements, with the
        // election noise folded into both models' expectations (an
        // independent pair shares "false" values at least whenever the
        // election mislabels the value they agree on).
        const double nu = Clamp(params.election_noise, 0.0, 0.5);
        double q_ind = Clamp((pf_ind + nu * pt_ind) / (pt_ind + pf_ind),
                             1e-6, 1.0 - 1e-6);
        double q_dep = Clamp((pf_dep + nu * pt_dep) / (pt_dep + pf_dep),
                             1e-6, 1.0 - 1e-6);
        log_evidence =
            pc.same_false * (SafeLog(q_dep) - SafeLog(q_ind)) +
            pc.same_true * (SafeLog(1.0 - q_dep) - SafeLog(1.0 - q_ind)) +
            params.disagreement_weight * pc.different *
                (SafeLog(pd_dep) - SafeLog(pd_ind));
      }
  
      double log_prior_ratio = std::log(1.0 - alpha) - std::log(alpha);
      // P(dep | data) = 1 / (1 + (1-a)/a * L_ind / L_dep).
      double log_odds_against = log_prior_ratio - log_evidence;
      double p_dep = 1.0 / (1.0 + std::exp(Clamp(log_odds_against, -50, 50)));
      matrix.set_prob(a, b, p_dep);
    }
  }
  return matrix;
}

}  // namespace tdac
