#include "td/estimates.h"

#include <algorithm>

#include "common/math_util.h"

namespace tdac {

namespace {

/// Affinely rescales all entries of a ragged matrix to [0, 1]; no-op when
/// the entries are all equal.
void AffineRescale(std::vector<std::vector<double>>* m) {
  double lo = 1e300;
  double hi = -1e300;
  for (const auto& row : *m) {
    for (double x : row) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  if (hi <= lo) return;
  for (auto& row : *m) {
    for (double& x : row) x = (x - lo) / (hi - lo);
  }
}

void AffineRescale(std::vector<double>* v) {
  double lo = 1e300;
  double hi = -1e300;
  for (double x : *v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (hi <= lo) return;
  for (double& x : *v) x = (x - lo) / (hi - lo);
}

}  // namespace

Result<TruthDiscoveryResult> TwoEstimates::DiscoverGuarded(
    const DatasetLike& data, const RunGuard& guard) const {
  if (data.num_claims() == 0) {
    return Status::InvalidArgument("Estimates: empty dataset");
  }
  const auto items = td_internal::GroupClaimsByItem(data);
  const size_t num_sources = static_cast<size_t>(data.num_sources());
  const double eps_clamp = Clamp(options_.clamp_epsilon, 1e-9, 0.4);

  // Sources covering each item (union of all supporters).
  std::vector<std::vector<SourceId>> covering(items.size());
  for (size_t it = 0; it < items.size(); ++it) {
    for (const auto& supporters : items[it].supporters) {
      covering[it].insert(covering[it].end(), supporters.begin(),
                          supporters.end());
    }
    std::sort(covering[it].begin(), covering[it].end());
  }

  std::vector<double> error(num_sources, 0.2);
  // pi[it][v]: current truth estimate; delta[it][v]: difficulty
  // (3-Estimates only).
  std::vector<std::vector<double>> pi(items.size());
  std::vector<std::vector<double>> delta(items.size());
  for (size_t it = 0; it < items.size(); ++it) {
    pi[it].assign(items[it].values.size(), 0.5);
    delta[it].assign(items[it].values.size(), 0.5);
  }

  // Membership test: is source s a positive supporter of value v?
  auto supports = [&](size_t it, size_t v, SourceId s) {
    const auto& sup = items[it].supporters[v];
    return std::binary_search(sup.begin(), sup.end(), s);
  };
  // GroupClaimsByItem sorts supporters by source id within each value.

  TruthDiscoveryResult result;
  result.stop_reason = StopReason::kMaxIterations;
  const int max_iter = std::max(1, options_.base.max_iterations);
  for (int iter = 0; iter < max_iter; ++iter) {
    if (iter > 0) {
      if (auto stop = guard.OnIteration()) {
        result.stop_reason = *stop;
        break;
      }
    }
    ++result.iterations;

    // Truth estimates.
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      for (size_t v = 0; v < item.values.size(); ++v) {
        double acc = 0.0;
        const double d =
            use_difficulty() ? Clamp(delta[it][v], eps_clamp, 1.0) : 1.0;
        for (SourceId s : covering[it]) {
          double correct = Clamp(error[static_cast<size_t>(s)] * d,
                                 eps_clamp, 1.0 - eps_clamp);
          acc += supports(it, v, s) ? (1.0 - correct) : correct;
        }
        pi[it][v] = acc / static_cast<double>(covering[it].size());
      }
    }
    if (options_.normalize) AffineRescale(&pi);

    // Error rates.
    std::vector<double> new_error(num_sources, 0.0);
    std::vector<double> counts(num_sources, 0.0);
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      for (size_t v = 0; v < item.values.size(); ++v) {
        const double d =
            use_difficulty() ? Clamp(delta[it][v], eps_clamp, 1.0) : 1.0;
        for (SourceId s : covering[it]) {
          double wrongness = supports(it, v, s) ? (1.0 - pi[it][v])
                                                : pi[it][v];
          new_error[static_cast<size_t>(s)] += wrongness / d;
          counts[static_cast<size_t>(s)] += 1.0;
        }
      }
    }
    for (size_t s = 0; s < num_sources; ++s) {
      new_error[s] = counts[s] > 0.0 ? new_error[s] / counts[s] : error[s];
    }
    if (options_.normalize) AffineRescale(&new_error);
    for (double& e : new_error) e = Clamp(e, eps_clamp, 1.0 - eps_clamp);

    // Difficulty (3-Estimates).
    if (use_difficulty()) {
      for (size_t it = 0; it < items.size(); ++it) {
        const auto& item = items[it];
        for (size_t v = 0; v < item.values.size(); ++v) {
          double acc = 0.0;
          for (SourceId s : covering[it]) {
            double e = Clamp(new_error[static_cast<size_t>(s)], eps_clamp,
                             1.0 - eps_clamp);
            double wrongness =
                supports(it, v, s) ? (1.0 - pi[it][v]) : pi[it][v];
            acc += wrongness / e;
          }
          delta[it][v] = Clamp(
              acc / static_cast<double>(covering[it].size()), eps_clamp, 1.0);
        }
      }
    }

    if (!AllFinite(new_error) || !AllFinite(pi)) {
      // Keep the last finite error vector; pi is re-derived from it.
      result.stop_reason = StopReason::kNonFinite;
      break;
    }
    double change = td_internal::MeanAbsDelta(error, new_error);
    error = std::move(new_error);
    if (change < options_.base.convergence_threshold && iter > 0) {
      result.converged = true;
      result.stop_reason = StopReason::kConverged;
      break;
    }
  }

  for (size_t it = 0; it < items.size(); ++it) {
    const auto& item = items[it];
    size_t best = td_internal::ArgMax(pi[it]);
    ObjectId o = ObjectFromKey(item.key);
    AttributeId a = AttributeFromKey(item.key);
    result.predicted.Set(o, a, item.values[best]);
    result.confidence[item.key] = Clamp(pi[it][best], 0.0, 1.0);
  }
  result.source_trust.resize(num_sources);
  for (size_t s = 0; s < num_sources; ++s) {
    result.source_trust[s] = 1.0 - error[s];
  }
  return result;
}

}  // namespace tdac
