#include "td/truth_discovery.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tdac {

Result<TruthDiscoveryResult> TruthDiscovery::Discover(
    const DatasetLike& data) const {
  return Discover(data, RunGuard::None());
}

Result<TruthDiscoveryResult> TruthDiscovery::Discover(
    const DatasetLike& data, const RunGuard& guard) const {
  TDAC_ASSIGN_OR_RETURN(TruthDiscoveryResult result,
                        DiscoverGuarded(data, guard));
  td_internal::SanitizeResult(result);
  return result;
}

namespace td_internal {

std::vector<ItemConflict> GroupClaimsByItem(const DatasetLike& data) {
  std::vector<ItemConflict> out;
  out.reserve(data.DataItems().size());
  for (uint64_t key : data.DataItems()) {
    const auto& claim_indices =
        data.ClaimsOn(ObjectFromKey(key), AttributeFromKey(key));
    ItemConflict item;
    item.key = key;
    // Collect (value, source) pairs, then sort by value for determinism.
    std::vector<std::pair<Value, SourceId>> pairs;
    pairs.reserve(claim_indices.size());
    for (int32_t idx : claim_indices) {
      const Claim& c = data.claim(static_cast<size_t>(idx));
      pairs.emplace_back(c.value, c.source);
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) {
                if (a.first < b.first) return true;
                if (b.first < a.first) return false;
                return a.second < b.second;
              });
    for (auto& [value, source] : pairs) {
      if (item.values.empty() || !(item.values.back() == value)) {
        item.values.push_back(value);
        item.supporters.emplace_back();
      }
      item.supporters.back().push_back(source);
    }
    out.push_back(std::move(item));
  }
  return out;
}

size_t ArgMax(const std::vector<double>& scores) {
  TDAC_CHECK(!scores.empty()) << "ArgMax over empty scores";
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  return best;
}

double MeanAbsDelta(const std::vector<double>& a,
                    const std::vector<double>& b) {
  TDAC_CHECK(a.size() == b.size()) << "MeanAbsDelta: size mismatch";
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

void SanitizeResult(TruthDiscoveryResult& result) {
  bool had_non_finite = false;
  for (double& t : result.source_trust) {
    if (!std::isfinite(t)) {
      t = 0.0;
      had_non_finite = true;
    }
  }
  // lint: unordered-ok (order-independent per-entry mutation, no reduction)
  for (auto& [key, conf] : result.confidence) {
    if (!std::isfinite(conf)) {
      conf = 0.0;
      had_non_finite = true;
    }
  }
  if (had_non_finite) {
    result.stop_reason = StopReason::kNonFinite;
    result.converged = false;
  }
}

}  // namespace td_internal
}  // namespace tdac
