#include "td/truth_discovery.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/checkpoint.h"
#include "common/logging.h"
#include "data/dataset.h"
#include "data/soa_mode.h"

namespace tdac {

Result<TruthDiscoveryResult> TruthDiscovery::Discover(
    const DatasetLike& data) const {
  return Discover(data, RunGuard::None());
}

Result<TruthDiscoveryResult> TruthDiscovery::Discover(
    const DatasetLike& data, const RunGuard& guard) const {
  TDAC_ASSIGN_OR_RETURN(TruthDiscoveryResult result,
                        DiscoverGuarded(data, guard));
  td_internal::SanitizeResult(result);
  return result;
}

std::string SerializeTruthDiscoveryResult(const TruthDiscoveryResult& result) {
  std::ostringstream out;
  out << "R " << result.iterations << ' ' << (result.converged ? 1 : 0) << ' '
      << static_cast<int>(result.stop_reason) << '\n';
  out << "T " << result.source_trust.size();
  for (double trust : result.source_trust) out << ' ' << HexDouble(trust);
  out << '\n';
  const std::vector<uint64_t> keys = result.predicted.SortedKeys();
  out << "I " << keys.size() << '\n';
  for (uint64_t key : keys) {
    const Value* value =
        result.predicted.Get(ObjectFromKey(key), AttributeFromKey(key));
    out << key << ' ' << static_cast<int>(value->kind()) << ' '
        << EncodeToken(value->ToString()) << '\n';
  }
  std::vector<uint64_t> conf_keys;
  conf_keys.reserve(result.confidence.size());
  // lint: unordered-ok (keys collected then sorted before emission)
  for (const auto& [key, unused] : result.confidence) conf_keys.push_back(key);
  std::sort(conf_keys.begin(), conf_keys.end());
  out << "C " << conf_keys.size() << '\n';
  for (uint64_t key : conf_keys) {
    out << key << ' ' << HexDouble(result.confidence.at(key)) << '\n';
  }
  return out.str();
}

Result<TruthDiscoveryResult> DeserializeTruthDiscoveryResult(
    std::string_view payload) {
  std::istringstream in{std::string(payload)};
  const auto malformed = [](const std::string& what) {
    return Status::InvalidArgument("malformed result payload: " + what);
  };

  std::string tag;
  int converged = 0;
  int stop = 0;
  TruthDiscoveryResult result;
  if (!(in >> tag) || tag != "R" || !(in >> result.iterations) ||
      !(in >> converged) || !(in >> stop)) {
    return malformed("bad R record");
  }
  if (stop < static_cast<int>(StopReason::kConverged) ||
      stop > static_cast<int>(StopReason::kOverloaded)) {
    return malformed("unknown stop reason " + std::to_string(stop));
  }
  result.converged = converged != 0;
  result.stop_reason = static_cast<StopReason>(stop);

  size_t trust_count = 0;
  if (!(in >> tag) || tag != "T" || !(in >> trust_count)) {
    return malformed("bad T record");
  }
  result.source_trust.reserve(trust_count);
  for (size_t i = 0; i < trust_count; ++i) {
    std::string hex;
    if (!(in >> hex)) return malformed("short trust vector");
    TDAC_ASSIGN_OR_RETURN(double trust, ParseHexDouble(hex));
    result.source_trust.push_back(trust);
  }

  size_t item_count = 0;
  if (!(in >> tag) || tag != "I" || !(in >> item_count)) {
    return malformed("bad I record");
  }
  for (size_t i = 0; i < item_count; ++i) {
    uint64_t key = 0;
    int kind = 0;
    std::string token;
    if (!(in >> key >> kind >> token)) return malformed("short item list");
    if (kind < static_cast<int>(Value::Kind::kString) ||
        kind > static_cast<int>(Value::Kind::kDouble)) {
      return malformed("unknown value kind " + std::to_string(kind));
    }
    TDAC_ASSIGN_OR_RETURN(std::string text, DecodeToken(token));
    TDAC_ASSIGN_OR_RETURN(
        Value value,
        Value::FromTextChecked(static_cast<Value::Kind>(kind), text));
    result.predicted.Set(ObjectFromKey(key), AttributeFromKey(key),
                         std::move(value));
  }

  size_t conf_count = 0;
  if (!(in >> tag) || tag != "C" || !(in >> conf_count)) {
    return malformed("bad C record");
  }
  for (size_t i = 0; i < conf_count; ++i) {
    uint64_t key = 0;
    std::string hex;
    if (!(in >> key >> hex)) return malformed("short confidence list");
    TDAC_ASSIGN_OR_RETURN(double conf, ParseHexDouble(hex));
    result.confidence[key] = conf;
  }
  return result;
}

namespace td_internal {
namespace {

/// Legacy grouping: per item, copy out (Value, SourceId) pairs and sort
/// them with full Value comparisons. Kept verbatim as the differential
/// reference the columnar path is tested against.
std::vector<ItemConflict> GroupClaimsByItemLegacy(const DatasetLike& data) {
  std::vector<ItemConflict> out;
  out.reserve(data.DataItems().size());
  for (uint64_t key : data.DataItems()) {
    const auto& claim_indices =
        data.ClaimsOn(ObjectFromKey(key), AttributeFromKey(key));
    ItemConflict item;
    item.key = key;
    // Collect (value, source) pairs, then sort by value for determinism.
    std::vector<std::pair<Value, SourceId>> pairs;
    pairs.reserve(claim_indices.size());
    for (int32_t idx : claim_indices) {
      // lint: claim-value-ok (this IS the legacy reference path)
      const Claim& c = data.claim(static_cast<size_t>(idx));
      pairs.emplace_back(c.value, c.source);
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) {
                if (a.first < b.first) return true;
                if (b.first < a.first) return false;
                return a.second < b.second;
              });
    for (auto& [value, source] : pairs) {
      if (item.values.empty() || !(item.values.back() == value)) {
        item.values.push_back(value);
        item.supporters.emplace_back();
      }
      item.supporters.back().push_back(source);
    }
    out.push_back(std::move(item));
  }
  return out;
}

/// Columnar grouping: each claim of an item becomes one packed uint64,
/// `(value rank << 32) | source`, read straight from the storage columns.
/// Sorting the packed keys is exactly the legacy (value, source) sort —
/// ranks are assigned in ascending Value order and equal Values share one
/// dictionary id — and each distinct rank run becomes one conflict entry,
/// its Value materialized once from the dictionary instead of copied per
/// claim. Sources within a run come out ascending for free.
///
/// Callers must check GroupKeysFitPackedWidth before taking this path: a
/// rank or source id at or past 2^32 would alias another key's high or low
/// half and silently reorder the sort.
///
/// Known divergence (unreachable through checked ingestion): two claims
/// with *distinct NaN* payloads on one item order by interning order here
/// vs. source order on the legacy path. FromTextChecked rejects non-finite
/// doubles, so no built dataset carries NaN values.
std::vector<ItemConflict> GroupClaimsByItemSoa(const DatasetLike& data) {
  const Dataset& storage = data.storage();
  const std::vector<int32_t>& ranks = storage.claim_value_ranks();
  const std::vector<int32_t>& sources = storage.claim_sources();
  const ValueDict& dict = storage.value_dict();
  // lint: hot-path-alloc-ok (single result buffer, reserved below)
  std::vector<ItemConflict> out;
  out.reserve(data.DataItems().size());
  // lint: hot-path-alloc-ok (one scratch buffer reused across all items)
  std::vector<uint64_t> packed;
  for (uint64_t key : data.DataItems()) {
    const auto& claim_indices =
        data.ClaimsOn(ObjectFromKey(key), AttributeFromKey(key));
    ItemConflict item;
    item.key = key;
    packed.clear();
    packed.reserve(claim_indices.size());
    for (int32_t idx : claim_indices) {
      const auto i = static_cast<size_t>(idx);
      packed.push_back(
          (static_cast<uint64_t>(static_cast<uint32_t>(ranks[i])) << 32) |
          static_cast<uint32_t>(sources[i]));
    }
    std::sort(packed.begin(), packed.end());
    // Count distinct ranks first (the packed keys are sorted and in cache)
    // so the per-item vectors are sized exactly once instead of growing.
    size_t groups = 0;
    uint64_t prev_hi = ~uint64_t{0};
    for (uint64_t p : packed) {
      const uint64_t hi = p >> 32;
      groups += hi != prev_hi;
      prev_hi = hi;
    }
    item.values.reserve(groups);
    item.value_ids.reserve(groups);
    item.supporters.reserve(groups);
    int64_t prev_rank = -1;
    for (uint64_t p : packed) {
      const auto rank = static_cast<int32_t>(p >> 32);
      if (rank != prev_rank) {
        const ValueId id = dict.id_at_rank(rank);
        item.values.push_back(dict.ValueAt(id));
        item.value_ids.push_back(id);
        item.supporters.emplace_back();
        prev_rank = rank;
      }
      item.supporters.back().push_back(
          static_cast<SourceId>(p & 0xffffffffULL));
    }
    out.push_back(std::move(item));
  }
  return out;
}

}  // namespace

bool GroupKeysFitPackedWidth(int64_t num_ranks, int64_t num_sources) {
  return num_ranks >= 0 && num_ranks <= kPackedGroupKeyWidth &&
         num_sources >= 0 && num_sources <= kPackedGroupKeyWidth;
}

uint64_t PackGroupKey(int64_t rank, int64_t source) {
  TDAC_CHECK(rank >= 0 && rank < kPackedGroupKeyWidth)
      << "PackGroupKey: rank " << rank << " out of packed width";
  TDAC_CHECK(source >= 0 && source < kPackedGroupKeyWidth)
      << "PackGroupKey: source " << source << " out of packed width";
  return (static_cast<uint64_t>(rank) << 32) | static_cast<uint64_t>(source);
}

std::vector<ItemConflict> GroupClaimsByItem(const DatasetLike& data) {
  // Width guard: the packed sort is only lexicographic while ranks and
  // source ids both fit their 32-bit half. Today's int32 id types cannot
  // exceed it, but the fallback keeps the invariant explicit instead of
  // baked into the type widths.
  if (SoaKernelsEnabled() &&
      GroupKeysFitPackedWidth(data.storage().value_dict().size(),
                              data.storage().num_sources())) {
    return GroupClaimsByItemSoa(data);
  }
  return GroupClaimsByItemLegacy(data);
}

size_t ArgMax(const std::vector<double>& scores) {
  TDAC_CHECK(!scores.empty()) << "ArgMax over empty scores";
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  return best;
}

double MeanAbsDelta(const std::vector<double>& a,
                    const std::vector<double>& b) {
  TDAC_CHECK(a.size() == b.size()) << "MeanAbsDelta: size mismatch";
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

void SanitizeResult(TruthDiscoveryResult& result) {
  bool had_non_finite = false;
  for (double& t : result.source_trust) {
    if (!std::isfinite(t)) {
      t = 0.0;
      had_non_finite = true;
    }
  }
  // lint: unordered-ok (order-independent per-entry mutation, no reduction)
  for (auto& [key, conf] : result.confidence) {
    if (!std::isfinite(conf)) {
      conf = 0.0;
      had_non_finite = true;
    }
  }
  if (had_non_finite) {
    result.stop_reason = StopReason::kNonFinite;
    result.converged = false;
  }
}

}  // namespace td_internal
}  // namespace tdac
