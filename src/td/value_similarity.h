#ifndef TDAC_TD_VALUE_SIMILARITY_H_
#define TDAC_TD_VALUE_SIMILARITY_H_

#include <memory>
#include <string_view>

#include "data/value.h"

namespace tdac {

/// \brief Graded closeness between two (generally distinct) claim values,
/// in [0, 1].
///
/// TruthFinder's "implication between facts" and AccuSim's similarity
/// support both let close-but-not-equal values reinforce each other; this
/// interface supplies the closeness measure.
class ValueSimilarity {
 public:
  virtual ~ValueSimilarity() = default;
  virtual std::string_view name() const = 0;

  /// Similarity in [0, 1]; must be symmetric and return 1 for equal values.
  virtual double Similarity(const Value& a, const Value& b) const = 0;
};

/// Exact match: 1 when equal, 0 otherwise.
class ExactSimilarity : public ValueSimilarity {
 public:
  std::string_view name() const override { return "exact"; }
  double Similarity(const Value& a, const Value& b) const override;
};

/// Numeric closeness exp(-|a-b| / scale); 0 across kinds or for strings.
class NumericSimilarity : public ValueSimilarity {
 public:
  explicit NumericSimilarity(double scale = 1.0) : scale_(scale) {}
  std::string_view name() const override { return "numeric"; }
  double Similarity(const Value& a, const Value& b) const override;

 private:
  double scale_;
};

/// Normalized Levenshtein similarity 1 - dist/max(len) for strings; 0 for
/// non-strings of different kinds.
class LevenshteinSimilarity : public ValueSimilarity {
 public:
  std::string_view name() const override { return "levenshtein"; }
  double Similarity(const Value& a, const Value& b) const override;
};

/// Jaccard similarity over whitespace-separated lowercase tokens; suits
/// multi-word string values ("Linus Torvalds" vs "Torvalds, Linus" share
/// tokens even though their edit distance is large). 0 for non-strings.
class JaccardTokenSimilarity : public ValueSimilarity {
 public:
  std::string_view name() const override { return "jaccard"; }
  double Similarity(const Value& a, const Value& b) const override;
};

/// Kind-dispatching default: numeric closeness for numbers (relative scale),
/// normalized Levenshtein for strings, 0 across kinds.
class DefaultSimilarity : public ValueSimilarity {
 public:
  std::string_view name() const override { return "default"; }
  double Similarity(const Value& a, const Value& b) const override;
};

/// Levenshtein edit distance (insert/delete/substitute cost 1).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// The process-wide default similarity instance.
const ValueSimilarity& GetDefaultSimilarity();

}  // namespace tdac

#endif  // TDAC_TD_VALUE_SIMILARITY_H_
