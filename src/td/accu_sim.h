#ifndef TDAC_TD_ACCU_SIM_H_
#define TDAC_TD_ACCU_SIM_H_

#include "td/accu.h"

namespace tdac {

/// \brief AccuSim (Dong et al., VLDB 2009): Accu plus a similarity
/// adjustment letting close values reinforce each other's vote counts.
class AccuSim : public Accu {
 public:
  explicit AccuSim(AccuOptions options = DefaultOptions())
      : Accu(Normalize(options)) {}

  std::string_view name() const override { return "AccuSim"; }

  static AccuOptions DefaultOptions() {
    AccuOptions o;
    o.similarity_weight = 0.5;
    return o;
  }

 private:
  static AccuOptions Normalize(AccuOptions o) {
    if (o.similarity_weight <= 0.0) o.similarity_weight = 0.5;
    return o;
  }
};

}  // namespace tdac

#endif  // TDAC_TD_ACCU_SIM_H_
