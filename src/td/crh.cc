#include "td/crh.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace tdac {

Result<TruthDiscoveryResult> Crh::DiscoverGuarded(
    const DatasetLike& data, const RunGuard& guard) const {
  if (data.num_claims() == 0) {
    return Status::InvalidArgument("CRH: empty dataset");
  }
  const auto items = td_internal::GroupClaimsByItem(data);
  const size_t num_sources = static_cast<size_t>(data.num_sources());

  std::vector<double> claim_counts(num_sources, 0.0);
  for (const auto& item : items) {
    for (const auto& supporters : item.supporters) {
      for (SourceId s : supporters) {
        claim_counts[static_cast<size_t>(s)] += 1.0;
      }
    }
  }

  std::vector<double> weight(num_sources, 1.0);
  std::vector<size_t> selected(items.size(), 0);
  std::vector<std::vector<double>> votes(items.size());

  TruthDiscoveryResult result;
  result.stop_reason = StopReason::kMaxIterations;
  const int max_iter = std::max(1, options_.base.max_iterations);
  std::vector<double> prev_loss(num_sources, 1.0);
  for (int iter = 0; iter < max_iter; ++iter) {
    if (iter > 0) {
      if (auto stop = guard.OnIteration()) {
        result.stop_reason = *stop;
        break;
      }
    }
    ++result.iterations;

    // Truth step: weighted vote per item.
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      votes[it].assign(item.values.size(), 0.0);
      for (size_t v = 0; v < item.values.size(); ++v) {
        for (SourceId s : item.supporters[v]) {
          votes[it][v] += weight[static_cast<size_t>(s)];
        }
      }
      selected[it] = td_internal::ArgMax(votes[it]);
    }

    // Weight step: 0/1 loss against the current election.
    std::vector<double> loss(num_sources, 0.0);
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      for (size_t v = 0; v < item.values.size(); ++v) {
        if (v == selected[it]) continue;
        for (SourceId s : item.supporters[v]) {
          loss[static_cast<size_t>(s)] += 1.0;
        }
      }
    }
    double total_loss = 0.0;
    for (size_t s = 0; s < num_sources; ++s) {
      loss[s] = claim_counts[s] > 0.0 ? loss[s] / claim_counts[s] : 1.0;
      total_loss += loss[s];
    }
    if (total_loss <= 0.0) {
      // Every source agrees with the election (zero loss across the
      // board): the -log(loss / total) weight is undefined, and with a
      // zero loss_floor it used to blow up to -log(0). Uniform weights
      // elect the same truths (the vote is scale-invariant).
      std::fill(weight.begin(), weight.end(), 1.0);
    } else {
      for (size_t s = 0; s < num_sources; ++s) {
        double normalized =
            std::max(loss[s] / total_loss, options_.loss_floor);
        weight[s] = -std::log(normalized);
      }
    }

    if (!AllFinite(weight)) {
      // Keep the last finite weights; the election matches them.
      result.stop_reason = StopReason::kNonFinite;
      break;
    }
    double change = td_internal::MeanAbsDelta(prev_loss, loss);
    prev_loss = loss;
    if (change < options_.base.convergence_threshold && iter > 0) {
      result.converged = true;
      result.stop_reason = StopReason::kConverged;
      break;
    }
  }

  for (size_t it = 0; it < items.size(); ++it) {
    const auto& item = items[it];
    ObjectId o = ObjectFromKey(item.key);
    AttributeId a = AttributeFromKey(item.key);
    result.predicted.Set(o, a, item.values[selected[it]]);
    double total = 0.0;
    for (double v : votes[it]) total += v;
    result.confidence[item.key] =
        total > 0.0 ? votes[it][selected[it]] / total : 0.0;
  }
  result.source_trust.assign(num_sources, 0.0);
  for (size_t s = 0; s < num_sources; ++s) {
    result.source_trust[s] = Clamp(1.0 - prev_loss[s], 0.0, 1.0);
  }
  return result;
}

}  // namespace tdac
