#include "td/majority_vote.h"

namespace tdac {

Result<TruthDiscoveryResult> MajorityVote::DiscoverGuarded(
    const DatasetLike& data, const RunGuard& /*guard*/) const {
  // Single-pass: no loop boundary at which a guard could usefully trip.
  if (data.num_claims() == 0) {
    return Status::InvalidArgument("MajorityVote: empty dataset");
  }
  TruthDiscoveryResult result;
  result.iterations = 1;
  result.converged = true;

  const auto items = td_internal::GroupClaimsByItem(data);
  for (const auto& item : items) {
    std::vector<double> votes(item.values.size());
    double total = 0.0;
    for (size_t i = 0; i < item.values.size(); ++i) {
      votes[i] = static_cast<double>(item.supporters[i].size());
      total += votes[i];
    }
    size_t best = td_internal::ArgMax(votes);
    ObjectId o = ObjectFromKey(item.key);
    AttributeId a = AttributeFromKey(item.key);
    result.predicted.Set(o, a, item.values[best]);
    result.confidence[item.key] = total > 0 ? votes[best] / total : 0.0;
  }

  // Post-hoc source trust: agreement rate with the elected values.
  result.source_trust.assign(static_cast<size_t>(data.num_sources()), 0.0);
  std::vector<double> counts(static_cast<size_t>(data.num_sources()), 0.0);
  for (int32_t id : data.claim_ids()) {
    const Claim& c = data.claim(static_cast<size_t>(id));
    const Value* elected = result.predicted.Get(c.object, c.attribute);
    counts[static_cast<size_t>(c.source)] += 1.0;
    if (elected != nullptr && *elected == c.value) {
      result.source_trust[static_cast<size_t>(c.source)] += 1.0;
    }
  }
  for (size_t s = 0; s < result.source_trust.size(); ++s) {
    if (counts[s] > 0) result.source_trust[s] /= counts[s];
  }
  return result;
}

}  // namespace tdac
