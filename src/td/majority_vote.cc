#include "td/majority_vote.h"

#include "data/dataset.h"
#include "data/soa_mode.h"

namespace tdac {

Result<TruthDiscoveryResult> MajorityVote::DiscoverGuarded(
    const DatasetLike& data, const RunGuard& /*guard*/) const {
  // Single-pass: no loop boundary at which a guard could usefully trip.
  if (data.num_claims() == 0) {
    return Status::InvalidArgument("MajorityVote: empty dataset");
  }
  const bool soa = SoaKernelsEnabled();
  TruthDiscoveryResult result;
  result.iterations = 1;
  result.converged = true;

  const Dataset& storage = data.storage();
  const std::vector<uint64_t>& storage_items = storage.DataItems();
  // Elected dictionary id per *storage* item row (kInvalidId = the row is
  // not part of this dataset/view); lets the trust pass below compare
  // int32 columns instead of looking claims up in the prediction map.
  std::vector<int32_t> elected(soa ? storage_items.size() : 0, kInvalidId);
  size_t row = 0;

  const auto items = td_internal::GroupClaimsByItem(data);
  for (const auto& item : items) {
    std::vector<double> votes(item.values.size());
    double total = 0.0;
    for (size_t i = 0; i < item.values.size(); ++i) {
      votes[i] = static_cast<double>(item.supporters[i].size());
      total += votes[i];
    }
    size_t best = td_internal::ArgMax(votes);
    ObjectId o = ObjectFromKey(item.key);
    AttributeId a = AttributeFromKey(item.key);
    result.predicted.Set(o, a, item.values[best]);
    result.confidence[item.key] = total > 0 ? votes[best] / total : 0.0;
    if (soa) {
      // Items arrive in ascending key order, a subsequence of the storage
      // items — a single forward cursor finds each item's storage row.
      while (storage_items[row] != item.key) ++row;
      elected[row] = item.value_ids[best];
    }
  }

  // Post-hoc source trust: agreement rate with the elected values.
  result.source_trust.assign(static_cast<size_t>(data.num_sources()), 0.0);
  std::vector<double> counts(static_cast<size_t>(data.num_sources()), 0.0);
  if (soa) {
    // Columnar pass: a claim agrees with the election iff its dictionary
    // id equals its item's elected id (id equality == Value equality), so
    // the loop is three contiguous int32 column reads per claim. The sums
    // are the same 1.0-increments as the legacy pass, so the resulting
    // trust is bit-identical.
    const std::vector<int32_t>& sources = storage.claim_sources();
    const std::vector<int32_t>& value_ids = storage.claim_value_ids();
    const std::vector<int32_t>& claim_rows = storage.claim_items();
    for (int32_t id : data.claim_ids()) {
      const auto i = static_cast<size_t>(id);
      const auto s = static_cast<size_t>(sources[i]);
      counts[s] += 1.0;
      if (value_ids[i] == elected[static_cast<size_t>(claim_rows[i])]) {
        result.source_trust[s] += 1.0;
      }
    }
  } else {
    for (int32_t id : data.claim_ids()) {
      // lint: claim-value-ok (legacy reference path for the SoA pass above)
      const Claim& c = data.claim(static_cast<size_t>(id));
      const Value* elected_value = result.predicted.Get(c.object, c.attribute);
      counts[static_cast<size_t>(c.source)] += 1.0;
      if (elected_value != nullptr && *elected_value == c.value) {
        result.source_trust[static_cast<size_t>(c.source)] += 1.0;
      }
    }
  }
  for (size_t s = 0; s < result.source_trust.size(); ++s) {
    if (counts[s] > 0) result.source_trust[s] /= counts[s];
  }
  return result;
}

}  // namespace tdac
