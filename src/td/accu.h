#ifndef TDAC_TD_ACCU_H_
#define TDAC_TD_ACCU_H_

#include "td/copy_detection.h"
#include "td/truth_discovery.h"
#include "td/value_similarity.h"

namespace tdac {

/// \brief Options for the Accu family (Dong, Berti-Equille & Srivastava,
/// VLDB 2009): Bayesian accuracy-weighted voting with copy detection.
struct AccuOptions {
  TruthDiscoveryOptions base;

  /// Source-dependence model parameters.
  CopyDetectionParams copy;

  /// When false, dependence detection and the independence discount are
  /// skipped entirely (plain AccuVote-style accuracy voting).
  bool detect_copying = true;

  /// When false, every source has the fixed accuracy 1 - uniform_error_rate
  /// (this is DEPEN, which models dependence but not differing accuracy).
  bool per_source_accuracy = true;

  /// Error rate assumed for all sources when per_source_accuracy is false.
  double uniform_error_rate = 0.2;

  /// Weight rho of the similarity vote adjustment
  /// C*(v) = C(v) + rho * sum_{v' != v} sim(v', v) C(v').
  /// Zero for Accu/DEPEN; AccuSim sets it > 0.
  double similarity_weight = 0.0;

  /// Similarity used by the adjustment above.
  const ValueSimilarity* similarity = &GetDefaultSimilarity();

  /// When true, the probability normalization includes the unclaimed false
  /// values of the domain (n + 1 candidate values per item, each unclaimed
  /// one carrying vote count 0), as in the original model.
  bool include_unclaimed_mass = true;
};

/// \brief Accu: iterative Bayesian truth discovery with per-source accuracy
/// estimation and copy detection.
///
/// Each outer iteration (the paper's #Iteration column counts these):
/// detect pairwise copying under the current truth; per data item, count
/// accuracy-weighted votes with higher-accuracy sources discounting their
/// probable copiers; normalize vote counts into value probabilities; re-elect
/// truths; re-estimate source accuracies as the mean probability of their
/// claims. Stops when accuracies (or, with fixed accuracy, the elected
/// truths) stabilize.
class Accu : public TruthDiscovery {
 public:
  explicit Accu(AccuOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "Accu"; }

  const AccuOptions& options() const { return options_; }

 protected:
  [[nodiscard]]
  Result<TruthDiscoveryResult> DiscoverGuarded(
      const DatasetLike& data, const RunGuard& guard) const override;

  AccuOptions options_;
};

}  // namespace tdac

#endif  // TDAC_TD_ACCU_H_
