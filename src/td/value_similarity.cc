#include "td/value_similarity.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>
#include <vector>

namespace tdac {

double ExactSimilarity::Similarity(const Value& a, const Value& b) const {
  return a == b ? 1.0 : 0.0;
}

double NumericSimilarity::Similarity(const Value& a, const Value& b) const {
  if (a == b) return 1.0;
  if (!a.IsNumeric() || !b.IsNumeric()) return 0.0;
  double da = a.AsNumeric();
  double db = b.AsNumeric();
  if (scale_ <= 0.0) return 0.0;
  return std::exp(-std::fabs(da - db) / scale_);
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity::Similarity(const Value& a,
                                         const Value& b) const {
  if (a == b) return 1.0;
  if (!a.is_string() || !b.is_string()) return 0.0;
  const std::string& sa = a.AsString();
  const std::string& sb = b.AsString();
  size_t mx = std::max(sa.size(), sb.size());
  if (mx == 0) return 1.0;
  size_t d = LevenshteinDistance(sa, sb);
  return 1.0 - static_cast<double>(d) / static_cast<double>(mx);
}

double JaccardTokenSimilarity::Similarity(const Value& a,
                                          const Value& b) const {
  if (a == b) return 1.0;
  if (!a.is_string() || !b.is_string()) return 0.0;
  auto tokenize = [](const std::string& s) {
    std::vector<std::string> tokens;
    std::string current;
    for (char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        current += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      } else if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    }
    if (!current.empty()) tokens.push_back(std::move(current));
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    return tokens;
  };
  std::vector<std::string> ta = tokenize(a.AsString());
  std::vector<std::string> tb = tokenize(b.AsString());
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  size_t intersection = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (ta[i] == tb[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (ta[i] < tb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t union_size = ta.size() + tb.size() - intersection;
  return static_cast<double>(intersection) /
         static_cast<double>(union_size);
}

double DefaultSimilarity::Similarity(const Value& a, const Value& b) const {
  if (a == b) return 1.0;
  if (a.IsNumeric() && b.IsNumeric()) {
    double da = a.AsNumeric();
    double db = b.AsNumeric();
    // Relative closeness: scale by the magnitude of the values so that
    // 1990 vs 1991 are close while 7 vs 11 are not.
    double scale = std::max({std::fabs(da), std::fabs(db), 1.0}) * 0.05;
    return std::exp(-std::fabs(da - db) / scale);
  }
  if (a.is_string() && b.is_string()) {
    return LevenshteinSimilarity().Similarity(a, b);
  }
  return 0.0;
}

const ValueSimilarity& GetDefaultSimilarity() {
  static const DefaultSimilarity* instance = new DefaultSimilarity();
  return *instance;
}

}  // namespace tdac
