#ifndef TDAC_TD_INVESTMENT_H_
#define TDAC_TD_INVESTMENT_H_

#include "td/truth_discovery.h"

namespace tdac {

/// \brief Options for Investment / PooledInvestment (Pasternack & Roth,
/// COLING 2010).
struct InvestmentOptions {
  TruthDiscoveryOptions base;

  /// Belief growth exponent g (the published defaults: 1.2 for Investment,
  /// 1.4 for PooledInvestment).
  double exponent = 1.2;
};

/// \brief Investment: sources split their trust evenly across their claims
/// ("invest" in them); a value's belief is its collected investment raised
/// to the growth exponent, and each investor is paid back in proportion to
/// its share of the investment.
class Investment : public TruthDiscovery {
 public:
  explicit Investment(InvestmentOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "Investment"; }

 protected:
  [[nodiscard]]
  Result<TruthDiscoveryResult> DiscoverGuarded(
      const DatasetLike& data, const RunGuard& guard) const override;

  /// Hook distinguishing PooledInvestment: maps per-item collected
  /// investments H(v) to beliefs B(v).
  virtual void BeliefsFromInvestments(const std::vector<double>& collected,
                                      std::vector<double>* beliefs) const;

  InvestmentOptions options_;
};

/// \brief PooledInvestment: like Investment but beliefs are linearly scaled
/// within each data item so that the item's total belief equals its total
/// investment — preventing items with many claims from dominating.
class PooledInvestment : public Investment {
 public:
  explicit PooledInvestment(InvestmentOptions options = DefaultOptions())
      : Investment(options) {}

  std::string_view name() const override { return "PooledInvestment"; }

  static InvestmentOptions DefaultOptions() {
    InvestmentOptions o;
    o.exponent = 1.4;
    return o;
  }

 protected:
  void BeliefsFromInvestments(const std::vector<double>& collected,
                              std::vector<double>* beliefs) const override;
};

}  // namespace tdac

#endif  // TDAC_TD_INVESTMENT_H_
