#ifndef TDAC_TD_REGISTRY_H_
#define TDAC_TD_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "td/truth_discovery.h"

namespace tdac {

/// \brief Name-based factory for the built-in algorithms.
///
/// Known names (case-insensitive): "MajorityVote", "TruthFinder", "DEPEN",
/// "Accu", "AccuSim". Each algorithm is created with its published default
/// hyper-parameters; callers needing custom options construct the concrete
/// classes directly.
[[nodiscard]]
Result<std::unique_ptr<TruthDiscovery>> MakeAlgorithm(const std::string& name);

/// The list of registered algorithm names, in canonical order.
std::vector<std::string> RegisteredAlgorithms();

}  // namespace tdac

#endif  // TDAC_TD_REGISTRY_H_
