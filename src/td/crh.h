#ifndef TDAC_TD_CRH_H_
#define TDAC_TD_CRH_H_

#include "td/truth_discovery.h"

namespace tdac {

/// \brief Options for CRH (Li et al., SIGMOD 2014).
struct CrhOptions {
  TruthDiscoveryOptions base;

  /// Floor applied to a source's normalized loss before the -log weight
  /// (a perfect source would otherwise get infinite weight).
  double loss_floor = 1e-4;
};

/// \brief CRH — Conflict Resolution on Heterogeneous data, specialized to
/// the categorical (0/1 loss) case of this library's one-truth setting.
///
/// Alternates between (a) electing per-item truths by weighted vote and
/// (b) re-weighting sources as w_s = -log(loss_s / sum_s' loss_s'), where
/// loss_s is the fraction of s's claims that disagree with the current
/// election. Reported source_trust is 1 - loss (the agreement rate).
class Crh : public TruthDiscovery {
 public:
  explicit Crh(CrhOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "CRH"; }

 protected:
  [[nodiscard]]
  Result<TruthDiscoveryResult> DiscoverGuarded(
      const DatasetLike& data, const RunGuard& guard) const override;

 private:
  CrhOptions options_;
};

}  // namespace tdac

#endif  // TDAC_TD_CRH_H_
