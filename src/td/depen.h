#ifndef TDAC_TD_DEPEN_H_
#define TDAC_TD_DEPEN_H_

#include "td/accu.h"

namespace tdac {

/// \brief DEPEN (Dong et al., VLDB 2009): models copying between sources but
/// assumes all sources share the same error rate — the copy-detection-only
/// member of the Accu family.
class Depen : public Accu {
 public:
  explicit Depen(AccuOptions options = DefaultOptions())
      : Accu(Normalize(options)) {}

  std::string_view name() const override { return "DEPEN"; }

  static AccuOptions DefaultOptions() {
    AccuOptions o;
    o.per_source_accuracy = false;
    o.similarity_weight = 0.0;
    return o;
  }

 private:
  static AccuOptions Normalize(AccuOptions o) {
    o.per_source_accuracy = false;
    o.similarity_weight = 0.0;
    return o;
  }
};

}  // namespace tdac

#endif  // TDAC_TD_DEPEN_H_
