#include "td/registry.h"

#include "common/string_util.h"
#include "td/accu.h"
#include "td/accu_sim.h"
#include "td/crh.h"
#include "td/depen.h"
#include "td/estimates.h"
#include "td/investment.h"
#include "td/majority_vote.h"
#include "td/sums.h"
#include "td/truth_finder.h"

namespace tdac {

Result<std::unique_ptr<TruthDiscovery>> MakeAlgorithm(
    const std::string& name) {
  const std::string lower = AsciiToLower(name);
  if (lower == "majorityvote" || lower == "majority" || lower == "vote") {
    return std::unique_ptr<TruthDiscovery>(new MajorityVote());
  }
  if (lower == "truthfinder") {
    return std::unique_ptr<TruthDiscovery>(new TruthFinder());
  }
  if (lower == "depen") {
    return std::unique_ptr<TruthDiscovery>(new Depen());
  }
  if (lower == "accu") {
    return std::unique_ptr<TruthDiscovery>(new Accu());
  }
  if (lower == "accusim") {
    return std::unique_ptr<TruthDiscovery>(new AccuSim());
  }
  if (lower == "sums") {
    return std::unique_ptr<TruthDiscovery>(new Sums());
  }
  if (lower == "averagelog") {
    return std::unique_ptr<TruthDiscovery>(new AverageLog());
  }
  if (lower == "investment") {
    return std::unique_ptr<TruthDiscovery>(new Investment());
  }
  if (lower == "pooledinvestment") {
    return std::unique_ptr<TruthDiscovery>(new PooledInvestment());
  }
  if (lower == "2-estimates" || lower == "twoestimates") {
    return std::unique_ptr<TruthDiscovery>(new TwoEstimates());
  }
  if (lower == "3-estimates" || lower == "threeestimates") {
    return std::unique_ptr<TruthDiscovery>(new ThreeEstimates());
  }
  if (lower == "crh") {
    return std::unique_ptr<TruthDiscovery>(new Crh());
  }
  return Status::NotFound("unknown truth-discovery algorithm: " + name);
}

std::vector<std::string> RegisteredAlgorithms() {
  return {"MajorityVote", "TruthFinder",      "DEPEN",
          "Accu",         "AccuSim",          "Sums",
          "AverageLog",   "Investment",       "PooledInvestment",
          "2-Estimates",  "3-Estimates",      "CRH"};
}

}  // namespace tdac
