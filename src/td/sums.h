#ifndef TDAC_TD_SUMS_H_
#define TDAC_TD_SUMS_H_

#include "td/truth_discovery.h"

namespace tdac {

/// \brief Options for the Sums / AverageLog family (Pasternack & Roth,
/// COLING 2010) — the web-of-trust baselines evaluated by the survey the
/// paper takes its hyper-parameters from (Waguih & Berti-Equille, 2014).
struct SumsOptions {
  TruthDiscoveryOptions base;
};

/// \brief Sums: Hubs-and-Authorities-style mutual reinforcement.
///
/// Belief in a value is the sum of its supporters' trust; a source's trust
/// is the sum of its claims' beliefs. Both vectors are max-normalized each
/// iteration to keep the fixpoint bounded. Truth per item is the
/// highest-belief value.
class Sums : public TruthDiscovery {
 public:
  explicit Sums(SumsOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "Sums"; }

 protected:
  [[nodiscard]]
  Result<TruthDiscoveryResult> DiscoverGuarded(
      const DatasetLike& data, const RunGuard& guard) const override;

  /// Hook distinguishing Sums from AverageLog: how a source's new trust is
  /// derived from the total belief of its claims.
  virtual double TrustFromBeliefs(double belief_sum, size_t claim_count) const {
    (void)claim_count;
    return belief_sum;
  }

  SumsOptions options_;
};

/// \brief AverageLog: like Sums but a source's trust is the *average*
/// belief of its claims scaled by log(1 + #claims), damping sources that
/// only assert a handful of values.
class AverageLog : public Sums {
 public:
  explicit AverageLog(SumsOptions options = {}) : Sums(options) {}

  std::string_view name() const override { return "AverageLog"; }

 protected:
  double TrustFromBeliefs(double belief_sum, size_t claim_count) const override;
};

}  // namespace tdac

#endif  // TDAC_TD_SUMS_H_
