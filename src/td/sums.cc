#include "td/sums.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace tdac {

namespace {

/// Max-normalizes `v` in place; no-op when the max is not positive.
void MaxNormalize(std::vector<double>* v) {
  double mx = 0.0;
  for (double x : *v) mx = std::max(mx, x);
  if (mx <= 0.0) return;
  for (double& x : *v) x /= mx;
}

}  // namespace

double AverageLog::TrustFromBeliefs(double belief_sum,
                                    size_t claim_count) const {
  if (claim_count == 0) return 0.0;
  return std::log(1.0 + static_cast<double>(claim_count)) * belief_sum /
         static_cast<double>(claim_count);
}

Result<TruthDiscoveryResult> Sums::DiscoverGuarded(
    const DatasetLike& data, const RunGuard& guard) const {
  if (data.num_claims() == 0) {
    return Status::InvalidArgument("Sums: empty dataset");
  }
  const auto items = td_internal::GroupClaimsByItem(data);
  const size_t num_sources = static_cast<size_t>(data.num_sources());

  std::vector<size_t> claim_counts(num_sources, 0);
  for (const auto& item : items) {
    for (const auto& supporters : item.supporters) {
      for (SourceId s : supporters) ++claim_counts[static_cast<size_t>(s)];
    }
  }

  std::vector<double> trust(num_sources, 1.0);
  std::vector<std::vector<double>> belief(items.size());

  TruthDiscoveryResult result;
  result.stop_reason = StopReason::kMaxIterations;
  const int max_iter = std::max(1, options_.base.max_iterations);
  for (int iter = 0; iter < max_iter; ++iter) {
    if (iter > 0) {
      if (auto stop = guard.OnIteration()) {
        result.stop_reason = *stop;
        break;
      }
    }
    ++result.iterations;

    // Belief step: B(v) = sum of supporter trust, max-normalized globally.
    double max_belief = 0.0;
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      belief[it].assign(item.values.size(), 0.0);
      for (size_t v = 0; v < item.values.size(); ++v) {
        for (SourceId s : item.supporters[v]) {
          belief[it][v] += trust[static_cast<size_t>(s)];
        }
        max_belief = std::max(max_belief, belief[it][v]);
      }
    }
    if (max_belief > 0.0) {
      for (auto& b : belief) {
        for (double& x : b) x /= max_belief;
      }
    }

    // Trust step.
    std::vector<double> new_trust(num_sources, 0.0);
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      for (size_t v = 0; v < item.values.size(); ++v) {
        for (SourceId s : item.supporters[v]) {
          new_trust[static_cast<size_t>(s)] += belief[it][v];
        }
      }
    }
    for (size_t s = 0; s < num_sources; ++s) {
      new_trust[s] = TrustFromBeliefs(new_trust[s], claim_counts[s]);
    }
    MaxNormalize(&new_trust);

    if (!AllFinite(new_trust)) {
      // Roll back: keep the last finite trust (belief matches it).
      result.stop_reason = StopReason::kNonFinite;
      break;
    }
    double delta = td_internal::MeanAbsDelta(trust, new_trust);
    trust = std::move(new_trust);
    if (delta < options_.base.convergence_threshold && iter > 0) {
      result.converged = true;
      result.stop_reason = StopReason::kConverged;
      break;
    }
  }

  for (size_t it = 0; it < items.size(); ++it) {
    const auto& item = items[it];
    size_t best = td_internal::ArgMax(belief[it]);
    ObjectId o = ObjectFromKey(item.key);
    AttributeId a = AttributeFromKey(item.key);
    result.predicted.Set(o, a, item.values[best]);
    double total = 0.0;
    for (double b : belief[it]) total += b;
    result.confidence[item.key] = total > 0.0 ? belief[it][best] / total : 0.0;
  }
  result.source_trust = std::move(trust);
  return result;
}

}  // namespace tdac
