#include "td/accu_sim.h"

// AccuSim is a configuration of the Accu engine; all logic lives in accu.cc.

namespace tdac {}  // namespace tdac
