#ifndef TDAC_TD_ESTIMATES_H_
#define TDAC_TD_ESTIMATES_H_

#include "td/truth_discovery.h"

namespace tdac {

/// \brief Options for 2-Estimates / 3-Estimates (Galland, Abiteboul,
/// Marian & Senellart, WSDM 2010 — the paper's reference [7]).
struct EstimatesOptions {
  TruthDiscoveryOptions base;

  /// Probability floor/ceiling applied to truth, error, and difficulty
  /// estimates before they enter a denominator.
  double clamp_epsilon = 1e-3;

  /// Whether to affinely rescale the truth-estimate vector to [0, 1] after
  /// each iteration (Galland's "linear" normalization lambda, which the
  /// original paper found essential for convergence quality).
  bool normalize = true;
};

/// \brief 2-Estimates: alternates between per-value truth estimates and
/// per-source error rates, treating each positive claim as an implicit
/// *negative* claim on every competing value of the same data item.
///
/// For value v with positive supporters P(v) and negative claimants N(v)
/// (sources that covered the item but claimed something else):
///   pi(v)  = mean over P(v) of (1 - eps(s))  and over N(v) of eps(s);
///   eps(s) = mean over positive claims of (1 - pi(v)) and over implicit
///            negative claims of pi(v).
class TwoEstimates : public TruthDiscovery {
 public:
  explicit TwoEstimates(EstimatesOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "2-Estimates"; }

 protected:
  [[nodiscard]]
  Result<TruthDiscoveryResult> DiscoverGuarded(
      const DatasetLike& data, const RunGuard& guard) const override;

  /// When true the update also maintains per-value difficulty estimates
  /// (3-Estimates).
  virtual bool use_difficulty() const { return false; }

  EstimatesOptions options_;
};

/// \brief 3-Estimates: 2-Estimates plus a per-value difficulty factor
/// delta(v); a source's statement about an easy value carries more weight
/// than one about a hard value: P(statement correct) = 1 - eps(s)*delta(v).
class ThreeEstimates : public TwoEstimates {
 public:
  explicit ThreeEstimates(EstimatesOptions options = {})
      : TwoEstimates(options) {}

  std::string_view name() const override { return "3-Estimates"; }

 protected:
  bool use_difficulty() const override { return true; }
};

}  // namespace tdac

#endif  // TDAC_TD_ESTIMATES_H_
