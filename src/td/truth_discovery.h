#ifndef TDAC_TD_TRUTH_DISCOVERY_H_
#define TDAC_TD_TRUTH_DISCOVERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/run_guard.h"
#include "common/status.h"
#include "data/dataset_like.h"
#include "data/ground_truth.h"
#include "data/value_dict.h"

namespace tdac {

/// \brief Options shared by every truth-discovery algorithm.
struct TruthDiscoveryOptions {
  /// Upper bound on outer iterations for iterative algorithms.
  int max_iterations = 20;

  /// Convergence test: the iteration stops when the L1 change of the source
  /// trust/accuracy vector divided by the number of sources drops below this.
  double convergence_threshold = 1e-4;

  /// Initial source trust / accuracy.
  double initial_trust = 0.8;
};

/// \brief Output of a truth-discovery run.
struct TruthDiscoveryResult {
  /// The predicted true value for every data item that has at least one
  /// claim.
  GroundTruth predicted;

  /// Confidence (algorithm-specific scale; probabilities for the Bayesian
  /// family, logistic confidences for TruthFinder, vote fractions for
  /// MajorityVote) of the selected value per data item key.
  std::unordered_map<uint64_t, double> confidence;

  /// Final per-source trust/accuracy estimate, indexed by SourceId.
  std::vector<double> source_trust;

  /// Number of outer iterations executed (the paper's #Iteration column).
  int iterations = 0;

  /// Whether the convergence test fired before max_iterations.
  bool converged = false;

  /// Why the run stopped. kConverged/kMaxIterations are clean outcomes;
  /// kDeadline/kCancelled/kNonFinite label a best-so-far degraded result
  /// (see docs/robustness.md).
  StopReason stop_reason = StopReason::kConverged;

  /// True when a guard or the numeric rails cut the run short.
  bool degraded() const { return IsDegraded(stop_reason); }
};

/// Serializes a result into a checkpoint payload: predictions in sorted key
/// order, Value payloads token-escaped, and every double as its IEEE-754
/// bits, so Serialize → Deserialize is a bit-exact round trip.
std::string SerializeTruthDiscoveryResult(const TruthDiscoveryResult& result);

/// Inverse of SerializeTruthDiscoveryResult; fails with InvalidArgument on
/// any malformed field (a checkpoint payload that passed its CRC but was
/// written by something else entirely).
[[nodiscard]] Result<TruthDiscoveryResult> DeserializeTruthDiscoveryResult(
    std::string_view payload);

/// \brief Abstract interface implemented by every algorithm (the paper's
/// "base truth discovery algorithm" F).
class TruthDiscovery {
 public:
  virtual ~TruthDiscovery() = default;

  /// Stable algorithm name ("MajorityVote", "TruthFinder", ...).
  virtual std::string_view name() const = 0;

  /// Runs the algorithm over all claims in `data` — an owning `Dataset` or
  /// a zero-copy `DatasetView` restriction. Fails on an empty dataset;
  /// items whose conflict set is empty are simply absent from the result.
  [[nodiscard]] Result<TruthDiscoveryResult> Discover(
      const DatasetLike& data) const;

  /// Guarded entry point: the run cooperatively checks `guard` at every
  /// outer iteration and stops early with a best-so-far result labeled by
  /// `stop_reason` when a deadline/budget/cancellation trips. Both entry
  /// points apply the numeric rails: a result can never carry non-finite
  /// trust or confidence (offending values are zeroed and the result is
  /// marked kNonFinite).
  [[nodiscard]] Result<TruthDiscoveryResult> Discover(
      const DatasetLike& data, const RunGuard& guard) const;

 protected:
  /// Algorithm body. Implementations check `guard.OnIteration()` at the top
  /// of every outer iteration after the first (so even a tripped guard
  /// yields one usable iterate) and stop with the returned StopReason.
  [[nodiscard]] virtual Result<TruthDiscoveryResult> DiscoverGuarded(
      const DatasetLike& data, const RunGuard& guard) const = 0;
};

namespace td_internal {

/// One data item's conflict set: the distinct claimed values and, aligned
/// with them, the sources supporting each value (ascending SourceId).
struct ItemConflict {
  uint64_t key = 0;
  std::vector<Value> values;
  std::vector<std::vector<SourceId>> supporters;

  /// Storage-dictionary id of each value, aligned with `values`. Filled by
  /// the columnar grouping path only (empty on the legacy path) — kernels
  /// that want integer value compares must fall back to `values` when this
  /// is empty.
  std::vector<ValueId> value_ids;
};

/// Groups the dataset's claims by data item, with values sorted (total order
/// on Value) so that downstream tie-breaking is deterministic.
///
/// Two implementations behind one contract (data/soa_mode.h): the legacy
/// path sorts (Value, SourceId) pairs per item; the columnar path packs
/// each claim's (value rank << 32 | source) into one uint64 from the
/// storage columns and sorts those — same order, no Value copies or string
/// comparisons. Outputs are bit-identical for any dataset that passed
/// checked ingestion (distinct non-NaN values have distinct ranks in value
/// order; equal values share one dictionary id).
///
/// The packed form assumes both halves fit in 32 bits. That assumption is
/// enforced, not implicit: the columnar path first checks
/// `GroupKeysFitPackedWidth` against the store's dictionary size and source
/// count and falls back to the legacy comparator when either axis is too
/// wide, so a future widening of the id types can never silently corrupt
/// the sort order.
std::vector<ItemConflict> GroupClaimsByItem(const DatasetLike& data);

/// Number of distinct values representable in one half of a packed group
/// key: ranks and source ids must both lie in [0, 2^32).
inline constexpr int64_t kPackedGroupKeyWidth = int64_t{1} << 32;

/// True when every rank in [0, num_ranks) and every source id in
/// [0, num_sources) fits its 32-bit half of the packed `(rank << 32) |
/// source` group key, i.e. packed-key order is exactly lexicographic
/// (rank, source) order. The columnar grouping sort requires this.
bool GroupKeysFitPackedWidth(int64_t num_ranks, int64_t num_sources);

/// Packs one (value rank, source id) pair into the 64-bit group key.
/// Aborts when either half is negative or out of packed width — callers
/// must gate on GroupKeysFitPackedWidth first.
uint64_t PackGroupKey(int64_t rank, int64_t source);

/// Index of the value with maximal score; ties resolved to the smallest
/// index (i.e. the smallest value, given sorted values).
size_t ArgMax(const std::vector<double>& scores);

/// Mean absolute change per coordinate between two equal-length vectors.
double MeanAbsDelta(const std::vector<double>& a, const std::vector<double>& b);

/// Final numeric rail applied by TruthDiscovery::Discover to every result:
/// replaces non-finite source-trust / confidence entries with 0.0 and, if
/// any were found, demotes the result to kNonFinite (converged = false).
/// A no-op on finite results.
void SanitizeResult(TruthDiscoveryResult& result);

}  // namespace td_internal

}  // namespace tdac

#endif  // TDAC_TD_TRUTH_DISCOVERY_H_
