#ifndef TDAC_TD_COPY_DETECTION_H_
#define TDAC_TD_COPY_DETECTION_H_

#include <vector>

#include "td/truth_discovery.h"

namespace tdac {

/// \brief Parameters of the Bayesian source-dependence model of Dong,
/// Berti-Equille & Srivastava (VLDB 2009).
struct CopyDetectionParams {
  /// A-priori probability that two sources are dependent.
  double alpha = 0.2;

  /// Copy rate: probability that a copier copies a particular value rather
  /// than providing it independently.
  double copy_rate = 0.8;

  /// Number of false values per data item in the underlying domain
  /// (the model's n).
  int n_false_values = 100;

  /// Floor/ceiling applied to error rates inside the likelihoods.
  double epsilon_floor = 1e-3;

  /// When true, the strict Dong-2009 joint likelihood over (kt, kf, kd) is
  /// used verbatim. It has two well-known pathologies under iteration:
  /// (a) two highly reliable sources agreeing on thousands of items
  /// accumulate kt * log-factor evidence and end up branded copiers, and
  /// (b) when the current election is partially wrong, honest sources
  /// "share false values" at the election's error rate and likewise get
  /// branded, which discounts the truth vote and locks the errors in.
  ///
  /// When false (default), a robust variant is used: the decisive statistic
  /// is the *fraction of agreements that fall on false values*, compared
  /// between the two models with an `election_noise` floor folded into the
  /// independent model (an independent pair shares "false" values at least
  /// whenever the election itself is wrong). Disagreements remain weakly
  /// exculpatory via `disagreement_weight`.
  bool count_true_agreement = false;

  /// Assumed probability that the current election mislabels an agreed
  /// value (robust mode only). Acts as a floor on the independent model's
  /// expected false-agreement rate.
  double election_noise = 0.05;

  /// Weight of the disagreement (kd) evidence in robust mode. Kept small:
  /// loose copiers (copy rate well below 1) disagree often, and full
  /// weighting would exculpate them entirely.
  double disagreement_weight = 0.1;
};

/// \brief Symmetric pairwise dependence probabilities between sources.
///
/// `prob(s1, s2)` is P(s1 ~ s2 | observations) under the current truth
/// estimate. Stored as a flat upper-triangular matrix.
class DependenceMatrix {
 public:
  explicit DependenceMatrix(int num_sources)
      : num_sources_(num_sources),
        probs_(static_cast<size_t>(num_sources) *
                   static_cast<size_t>(num_sources),
               0.0) {}

  double prob(SourceId a, SourceId b) const {
    return probs_[Index(a, b)];
  }
  void set_prob(SourceId a, SourceId b, double p) {
    probs_[Index(a, b)] = p;
    probs_[Index(b, a)] = p;
  }
  int num_sources() const { return num_sources_; }

 private:
  size_t Index(SourceId a, SourceId b) const {
    return static_cast<size_t>(a) * static_cast<size_t>(num_sources_) +
           static_cast<size_t>(b);
  }

  int num_sources_;
  std::vector<double> probs_;
};

/// \brief Computes pairwise dependence probabilities.
///
/// For every pair of sources with common data items, the observations are
/// summarized (relative to the current `selected` truth per item) as
/// kt = #common items where both give the same *true* value,
/// kf = #common items where both give the same *false* value,
/// kd = #common items where they differ; a Bayes factor between the
/// independent and dependent generative models yields P(dependent).
///
/// \param items conflict sets from GroupClaimsByItem.
/// \param selected per item, the index (into item.values) of the currently
///        elected true value.
/// \param accuracy current per-source accuracy estimates.
DependenceMatrix DetectCopying(
    const std::vector<td_internal::ItemConflict>& items,
    const std::vector<size_t>& selected, const std::vector<double>& accuracy,
    const CopyDetectionParams& params);

}  // namespace tdac

#endif  // TDAC_TD_COPY_DETECTION_H_
