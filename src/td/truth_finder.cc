#include "td/truth_finder.h"

#include <cmath>

#include "common/math_util.h"

namespace tdac {

Result<TruthDiscoveryResult> TruthFinder::DiscoverGuarded(
    const DatasetLike& data, const RunGuard& guard) const {
  if (data.num_claims() == 0) {
    return Status::InvalidArgument("TruthFinder: empty dataset");
  }
  const auto items = td_internal::GroupClaimsByItem(data);
  const size_t num_sources = static_cast<size_t>(data.num_sources());

  // Pre-compute the implication matrix per item (small conflict sets).
  // imp[i][j] = sim(values[i], values[j]) - base_similarity.
  std::vector<std::vector<std::vector<double>>> implication(items.size());
  if (options_.implication_weight > 0.0) {
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& vs = items[it].values;
      implication[it].assign(vs.size(), std::vector<double>(vs.size(), 0.0));
      for (size_t i = 0; i < vs.size(); ++i) {
        for (size_t j = i + 1; j < vs.size(); ++j) {
          double imp = options_.similarity->Similarity(vs[i], vs[j]) -
                       options_.base_similarity;
          implication[it][i][j] = imp;
          implication[it][j][i] = imp;
        }
      }
    }
  }

  std::vector<double> trust(num_sources, options_.initial_trust);
  // Per-item confidence of each candidate value.
  std::vector<std::vector<double>> conf(items.size());

  TruthDiscoveryResult result;
  result.stop_reason = StopReason::kMaxIterations;
  const int max_iter = std::max(1, options_.base.max_iterations);
  for (int iter = 0; iter < max_iter; ++iter) {
    if (iter > 0) {
      if (auto stop = guard.OnIteration()) {
        result.stop_reason = *stop;
        break;
      }
    }
    ++result.iterations;

    // tau(s) = -ln(1 - t(s)), with trust clamped away from 1.
    std::vector<double> tau(num_sources);
    for (size_t s = 0; s < num_sources; ++s) {
      tau[s] = -std::log(Clamp(1.0 - trust[s], 1e-9, 1.0));
    }

    // Value confidence scores.
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      std::vector<double> sigma(item.values.size(), 0.0);
      for (size_t v = 0; v < item.values.size(); ++v) {
        for (SourceId s : item.supporters[v]) {
          sigma[v] += tau[static_cast<size_t>(s)];
        }
      }
      std::vector<double> adjusted = sigma;
      if (options_.implication_weight > 0.0) {
        for (size_t v = 0; v < sigma.size(); ++v) {
          double extra = 0.0;
          for (size_t w = 0; w < sigma.size(); ++w) {
            if (w == v) continue;
            extra += implication[it][w][v] * sigma[w];
          }
          adjusted[v] = sigma[v] + options_.implication_weight * extra;
        }
      }
      conf[it].resize(adjusted.size());
      for (size_t v = 0; v < adjusted.size(); ++v) {
        conf[it][v] = Logistic(options_.dampening * adjusted[v]);
      }
    }

    // New trust: mean confidence of the values each source claims.
    std::vector<double> new_trust(num_sources, 0.0);
    std::vector<double> counts(num_sources, 0.0);
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      for (size_t v = 0; v < item.values.size(); ++v) {
        for (SourceId s : item.supporters[v]) {
          new_trust[static_cast<size_t>(s)] += conf[it][v];
          counts[static_cast<size_t>(s)] += 1.0;
        }
      }
    }
    for (size_t s = 0; s < num_sources; ++s) {
      new_trust[s] = counts[s] > 0
                         ? Clamp(new_trust[s] / counts[s], 1e-6, 1.0 - 1e-6)
                         : trust[s];
    }

    if (!AllFinite(new_trust)) {
      // Roll back to the last finite iterate (conf still matches `trust`).
      result.stop_reason = StopReason::kNonFinite;
      break;
    }
    double change = 1.0 - CosineSimilarity(trust, new_trust);
    trust = std::move(new_trust);
    if (change < options_.base.convergence_threshold && iter > 0) {
      result.converged = true;
      result.stop_reason = StopReason::kConverged;
      break;
    }
  }

  for (size_t it = 0; it < items.size(); ++it) {
    const auto& item = items[it];
    size_t best = td_internal::ArgMax(conf[it]);
    ObjectId o = ObjectFromKey(item.key);
    AttributeId a = AttributeFromKey(item.key);
    result.predicted.Set(o, a, item.values[best]);
    result.confidence[item.key] = conf[it][best];
  }
  result.source_trust = std::move(trust);
  return result;
}

}  // namespace tdac
