#ifndef TDAC_TD_MAJORITY_VOTE_H_
#define TDAC_TD_MAJORITY_VOTE_H_

#include "td/truth_discovery.h"

namespace tdac {

/// \brief The simplest baseline: per data item, the value with the most
/// supporting sources wins; ties break to the smallest value.
///
/// Runs in a single pass (the paper's #Iteration column reports 1).
/// Source trust is reported post hoc as the fraction of a source's claims
/// that agree with the elected majority.
class MajorityVote : public TruthDiscovery {
 public:
  MajorityVote() = default;

  std::string_view name() const override { return "MajorityVote"; }

 protected:
  [[nodiscard]]
  Result<TruthDiscoveryResult> DiscoverGuarded(
      const DatasetLike& data, const RunGuard& guard) const override;
};

}  // namespace tdac

#endif  // TDAC_TD_MAJORITY_VOTE_H_
