#include "td/accu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/math_util.h"

namespace tdac {

namespace {

/// ln(n * A / (1 - A)): the vote-count weight of a source with accuracy A
/// in a domain with n false values.
double VoteWeight(double accuracy, double n_false) {
  double a = Clamp(accuracy, 1e-3, 1.0 - 1e-3);
  return std::log(n_false * a / (1.0 - a));
}

}  // namespace

Result<TruthDiscoveryResult> Accu::DiscoverGuarded(
    const DatasetLike& data, const RunGuard& guard) const {
  if (data.num_claims() == 0) {
    return Status::InvalidArgument("Accu: empty dataset");
  }
  const auto items = td_internal::GroupClaimsByItem(data);
  const size_t num_sources = static_cast<size_t>(data.num_sources());
  const double n_false = std::max(1, options_.copy.n_false_values);

  std::vector<double> accuracy(
      num_sources, options_.per_source_accuracy
                       ? options_.base.initial_trust
                       : 1.0 - options_.uniform_error_rate);

  // Initial election: majority vote per item.
  std::vector<size_t> selected(items.size(), 0);
  for (size_t it = 0; it < items.size(); ++it) {
    std::vector<double> votes(items[it].values.size());
    for (size_t v = 0; v < votes.size(); ++v) {
      votes[v] = static_cast<double>(items[it].supporters[v].size());
    }
    selected[it] = td_internal::ArgMax(votes);
  }

  // Per-item probabilities of each candidate value (filled each iteration).
  std::vector<std::vector<double>> probs(items.size());

  TruthDiscoveryResult result;
  result.stop_reason = StopReason::kMaxIterations;
  const int max_iter = std::max(1, options_.base.max_iterations);
  for (int iter = 0; iter < max_iter; ++iter) {
    if (iter > 0) {
      if (auto stop = guard.OnIteration()) {
        result.stop_reason = *stop;
        break;
      }
    }
    ++result.iterations;

    DependenceMatrix dependence(0);
    if (options_.detect_copying) {
      dependence = DetectCopying(items, selected, accuracy, options_.copy);
    }

    bool selection_changed = false;
    for (size_t it = 0; it < items.size(); ++it) {
      const auto& item = items[it];
      std::vector<double> vote(item.values.size(), 0.0);
      for (size_t v = 0; v < item.values.size(); ++v) {
        // Count higher-accuracy sources first; each later source is
        // discounted by its probability of copying an earlier one.
        std::vector<SourceId> order = item.supporters[v];
        std::sort(order.begin(), order.end(), [&](SourceId a, SourceId b) {
          double aa = accuracy[static_cast<size_t>(a)];
          double ab = accuracy[static_cast<size_t>(b)];
          if (aa != ab) return aa > ab;
          return a < b;
        });
        for (size_t i = 0; i < order.size(); ++i) {
          double independence = 1.0;
          if (options_.detect_copying) {
            for (size_t j = 0; j < i; ++j) {
              independence *= 1.0 - options_.copy.copy_rate *
                                        dependence.prob(order[i], order[j]);
            }
          }
          vote[v] +=
              VoteWeight(accuracy[static_cast<size_t>(order[i])], n_false) *
              independence;
        }
      }

      if (options_.similarity_weight > 0.0 && item.values.size() > 1) {
        std::vector<double> adjusted = vote;
        for (size_t v = 0; v < vote.size(); ++v) {
          double extra = 0.0;
          for (size_t w = 0; w < vote.size(); ++w) {
            if (w == v) continue;
            extra += options_.similarity->Similarity(item.values[w],
                                                     item.values[v]) *
                     vote[w];
          }
          adjusted[v] = vote[v] + options_.similarity_weight * extra;
        }
        vote = std::move(adjusted);
      }

      // P(v) = exp(C(v)) / (sum over observed + unclaimed candidates).
      // Stable log-sum-exp with the unclaimed candidates carrying C = 0.
      double unclaimed =
          options_.include_unclaimed_mass
              ? std::max(0.0, n_false + 1.0 -
                                  static_cast<double>(item.values.size()))
              : 0.0;
      double mx = *std::max_element(vote.begin(), vote.end());
      if (unclaimed > 0.0) mx = std::max(mx, 0.0);
      double denom = unclaimed * std::exp(-mx);
      for (double c : vote) denom += std::exp(c - mx);
      probs[it].resize(vote.size());
      for (size_t v = 0; v < vote.size(); ++v) {
        probs[it][v] = std::exp(vote[v] - mx) / denom;
      }

      size_t best = td_internal::ArgMax(vote);
      if (best != selected[it]) selection_changed = true;
      selected[it] = best;
    }

    if (!AllFinite(probs)) {
      // Keep the previous election and accuracies; probs is re-derived
      // from them on the next run.
      result.stop_reason = StopReason::kNonFinite;
      break;
    }
    if (options_.per_source_accuracy) {
      std::vector<double> new_accuracy(num_sources, 0.0);
      std::vector<double> counts(num_sources, 0.0);
      for (size_t it = 0; it < items.size(); ++it) {
        const auto& item = items[it];
        for (size_t v = 0; v < item.values.size(); ++v) {
          for (SourceId s : item.supporters[v]) {
            new_accuracy[static_cast<size_t>(s)] += probs[it][v];
            counts[static_cast<size_t>(s)] += 1.0;
          }
        }
      }
      for (size_t s = 0; s < num_sources; ++s) {
        new_accuracy[s] =
            counts[s] > 0
                ? Clamp(new_accuracy[s] / counts[s], 1e-3, 1.0 - 1e-3)
                : accuracy[s];
      }
      double delta = td_internal::MeanAbsDelta(accuracy, new_accuracy);
      accuracy = std::move(new_accuracy);
      if (delta < options_.base.convergence_threshold && iter > 0) {
        result.converged = true;
        result.stop_reason = StopReason::kConverged;
        break;
      }
    } else {
      // Fixed accuracy (DEPEN): stop when the election stabilizes.
      if (!selection_changed && iter > 0) {
        result.converged = true;
        result.stop_reason = StopReason::kConverged;
        break;
      }
    }
  }

  for (size_t it = 0; it < items.size(); ++it) {
    const auto& item = items[it];
    ObjectId o = ObjectFromKey(item.key);
    AttributeId a = AttributeFromKey(item.key);
    result.predicted.Set(o, a, item.values[selected[it]]);
    result.confidence[item.key] = probs[it][selected[it]];
  }
  result.source_trust = std::move(accuracy);
  return result;
}

}  // namespace tdac
