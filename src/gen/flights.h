#ifndef TDAC_GEN_FLIGHTS_H_
#define TDAC_GEN_FLIGHTS_H_

#include <cstdint>

#include "common/result.h"
#include "gen/grouped_source_sim.h"

namespace tdac {

/// \brief Simulator standing in for the **Flights** dataset of Li et al.
/// (VLDB 2013), matched to the paper's Table 8 statistics: 38 sources,
/// 100 objects (flights), 6 attributes in three correlated families
/// (scheduled times, actual times, gates), ~8.6k observations, DCR ~ 66%.
[[nodiscard]] Result<GroupedSimData> GenerateFlights(uint64_t seed = 42);

/// The configuration used by GenerateFlights, for tweaking in ablations.
GroupedSimConfig FlightsConfig(uint64_t seed = 42);

}  // namespace tdac

#endif  // TDAC_GEN_FLIGHTS_H_
