#include "gen/grouped_source_sim.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "data/dataset_builder.h"

namespace tdac {

namespace {

std::vector<int64_t> DrawDistinctValues(Rng* rng, int count) {
  std::unordered_set<int64_t> seen;
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(count));
  while (static_cast<int>(out.size()) < count) {
    int64_t v = rng->NextInt(0, 999999999);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace

Result<GroupedSimData> GenerateGroupedSim(const GroupedSimConfig& config) {
  if (config.num_sources < 2 || config.num_objects < 1) {
    return Status::InvalidArgument(
        "grouped sim: need >= 2 sources and >= 1 object");
  }
  if (config.families.empty()) {
    return Status::InvalidArgument("grouped sim: families required");
  }
  if (config.num_false_values < 1) {
    return Status::InvalidArgument("grouped sim: need >= 1 false value");
  }

  Rng rng(config.seed);
  const int num_families = static_cast<int>(config.families.size());
  int num_attrs = 0;
  for (const auto& [name, count] : config.families) {
    if (count < 1) {
      return Status::InvalidArgument("grouped sim: empty family " + name);
    }
    num_attrs += count;
  }

  GroupedSimData out;
  out.reliability.assign(
      static_cast<size_t>(config.num_sources),
      std::vector<double>(static_cast<size_t>(num_families), 0.0));
  for (int s = 0; s < config.num_sources; ++s) {
    double base = rng.NextGaussian(config.base_mean, config.base_spread);
    for (int f = 0; f < num_families; ++f) {
      double r = rng.NextBernoulli(config.low_fraction)
                     ? config.low_reliability +
                           rng.NextGaussian(0.0, 0.05)
                     : base + rng.NextGaussian(0.0, config.family_spread);
      out.reliability[static_cast<size_t>(s)][static_cast<size_t>(f)] =
          Clamp(r, 0.05, 0.99);
    }
  }

  DatasetBuilder builder;
  std::vector<SourceId> sources(static_cast<size_t>(config.num_sources));
  for (int s = 0; s < config.num_sources; ++s) {
    sources[static_cast<size_t>(s)] =
        builder.AddSource(config.name + "-src" + std::to_string(s + 1));
  }
  std::vector<AttributeId> attrs;
  std::vector<int> family_of;
  std::vector<std::vector<AttributeId>> family_groups(
      static_cast<size_t>(num_families));
  for (int f = 0; f < num_families; ++f) {
    for (int i = 0; i < config.families[static_cast<size_t>(f)].second; ++i) {
      AttributeId a = builder.AddAttribute(
          config.families[static_cast<size_t>(f)].first + "-" +
          std::to_string(i + 1));
      attrs.push_back(a);
      family_of.push_back(f);
      family_groups[static_cast<size_t>(f)].push_back(a);
    }
  }

  for (int o = 0; o < config.num_objects; ++o) {
    ObjectId oid = builder.AddObject("obj" + std::to_string(o + 1));
    // Which sources track this object at all.
    std::vector<char> covers(static_cast<size_t>(config.num_sources), 0);
    for (int s = 0; s < config.num_sources; ++s) {
      covers[static_cast<size_t>(s)] =
          rng.NextBernoulli(config.object_cover_rate);
    }
    for (int a = 0; a < num_attrs; ++a) {
      std::vector<int64_t> pool =
          DrawDistinctValues(&rng, config.num_false_values + 1);
      const Value truth(pool[0]);
      out.truth.Set(oid, attrs[static_cast<size_t>(a)], truth);
      const int f = family_of[static_cast<size_t>(a)];
      for (int s = 0; s < config.num_sources; ++s) {
        if (!covers[static_cast<size_t>(s)]) continue;
        if (!rng.NextBernoulli(config.attr_answer_rate)) continue;
        const double r =
            out.reliability[static_cast<size_t>(s)][static_cast<size_t>(f)];
        Value claimed;
        if (rng.NextBernoulli(r)) {
          claimed = truth;
        } else if (rng.NextBernoulli(config.distractor_rate)) {
          claimed = Value(pool[1]);  // canonical wrong value for this item
        } else {
          claimed = Value(pool[1 + rng.NextBounded(static_cast<uint64_t>(
              config.num_false_values))]);
        }
        TDAC_RETURN_NOT_OK(builder.AddClaim(sources[static_cast<size_t>(s)],
                                            oid, attrs[static_cast<size_t>(a)],
                                            std::move(claimed)));
      }
    }
  }

  TDAC_ASSIGN_OR_RETURN(out.dataset, builder.Build());
  TDAC_ASSIGN_OR_RETURN(out.families,
                        AttributePartition::FromGroups(family_groups));
  return out;
}

}  // namespace tdac
