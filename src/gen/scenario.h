#ifndef TDAC_GEN_SCENARIO_H_
#define TDAC_GEN_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/ground_truth.h"

namespace tdac {

/// How claims are distributed over sources.
enum class SkewProfile {
  /// Every (source, item) cell is claimed independently with probability
  /// `dcr` — the homogeneous baseline.
  kRandom = 0,

  /// Exactly k = round(dcr * S) sources per item, rotated round-robin over
  /// the source list so every source ends up with the same claim count.
  kEven = 1,

  /// Heavy-head skew: source s is included with probability proportional
  /// to min(1, lambda / (s + 1)) where lambda is calibrated (bisection) so
  /// the expected coverage still equals `dcr`. Low source ids carry most
  /// of the mass — the "few dominant aggregators" shape.
  kStacked = 2,
};

/// The planted adversarial structure, layered on top of the skew profile.
enum class AdversaryMode {
  kNone = 0,

  /// A copying ring: `ring_size` sources share a leader whose claim the
  /// members replicate with probability `ring_copy_rate`. Stresses
  /// dependence detection (DetectCopying / Accu's source-dependence
  /// discount) — the ring manufactures agreement that is not evidence.
  kCopyRing = 1,

  /// A `majority_wrong_share` fraction of attributes where every source's
  /// truth probability is *flipped* (truthful with probability 1 - acc)
  /// and all false claims coalesce on the canonical distractor. Reliable
  /// majorities turn into coherent lying majorities on those attributes.
  kMajorityWrong = 2,

  /// String values where every false value is a `near_duplicate_edits`-
  /// character edit of the true token. Exact-equality voting still works;
  /// similarity-weighted algorithms (AccuSim, TruthFinder's implication)
  /// and the masked-Hamming kernels see near-identical competitors.
  kNearDuplicate = 3,
};

const char* ToString(SkewProfile profile);
const char* ToString(AdversaryMode mode);

/// \brief Declarative description of one adversarial/skewed scenario.
///
/// `GenerateScenario` turns a spec into a dataset with exact-by-construction
/// ground truth plus a `ScenarioReport` of the realized statistics, so a
/// bench cell is fully described by (spec, seed) and fully audited by its
/// report. Specs are value types: a scenario matrix is just a vector.
struct ScenarioSpec {
  /// Cell identifier; must be non-empty and filename-safe ([A-Za-z0-9._-])
  /// because benches use it as a checkpoint slot and JSON key.
  std::string name = "scenario";

  int num_objects = 50;
  int num_attributes = 4;
  int num_sources = 12;

  SkewProfile skew = SkewProfile::kRandom;

  /// Target data coverage rate: the expected fraction of the S x (O * A)
  /// (source, item) cells that carry a claim, in (0, 1]. Every item and
  /// every source is still guaranteed at least one claim, which inflates
  /// very sparse regimes slightly (the report records the realized rate).
  double dcr = 0.5;

  /// Fraction of sources drawn at `reliable_accuracy`; the rest claim the
  /// truth with `unreliable_accuracy`.
  double reliable_share = 0.6;
  double reliable_accuracy = 0.9;
  double unreliable_accuracy = 0.2;

  /// Size of the per-item false-value pool (>= 1; the pool's first false
  /// value is the canonical distractor).
  int num_false_values = 8;

  /// Probability a false claim lands on the distractor instead of a
  /// uniform pool draw (coalescing errors, as in gen/synthetic.h).
  double distractor_rate = 0.8;

  AdversaryMode adversary = AdversaryMode::kNone;

  /// kCopyRing knobs: ring size in [2, num_sources]; member copy rate.
  int ring_size = 4;
  double ring_copy_rate = 0.95;

  /// kMajorityWrong knob: fraction of attributes with flipped truth.
  double majority_wrong_share = 0.5;

  /// kNearDuplicate knob: substitution count per decoy, in [1, 3].
  int near_duplicate_edits = 1;

  uint64_t seed = 42;
};

/// \brief Realized statistics of a generated scenario, the machine-readable
/// half of the spec -> report contract.
///
/// Everything here is measured from the generated claims (not echoed from
/// the spec), so property tests can check that generation delivered what
/// the spec promised: the skew histogram has the right shape, the realized
/// DCR is within tolerance of the target, the ring really agrees, and the
/// majority-wrong attributes really flipped their majorities.
struct ScenarioReport {
  std::string name;
  std::string skew;
  std::string adversary;

  int num_objects = 0;
  int num_attributes = 0;
  int num_sources = 0;
  size_t num_claims = 0;

  double target_dcr = 0.0;

  /// claims / (sources * objects * attributes) — the spec's coverage
  /// semantics. (Dataset::DataCoverageRate() conditions on the active
  /// sources/attributes per object and so reads higher under sparsity.)
  double realized_dcr = 0.0;

  /// Claim count and realized truthful fraction per source id.
  std::vector<int64_t> claims_per_source;
  std::vector<double> source_accuracy;

  /// kCopyRing: the ring (leader first) and the fraction of member claims
  /// that equal the leader's claim on the same item (0 when not measured).
  std::vector<int32_t> ring_members;
  double ring_agreement = 0.0;

  /// kMajorityWrong: the flipped attribute ids, and how many of their
  /// items ended up with a false value strictly out-voting the truth.
  std::vector<int32_t> majority_wrong_attributes;
  int64_t majority_wrong_items = 0;

  /// kNearDuplicate: items whose claim set contains >= 2 distinct values
  /// (which are near-duplicates of each other by construction).
  int64_t near_duplicate_items = 0;

  /// Flat JSON object with all of the above (stable field order).
  std::string ToJson() const;
};

/// \brief A generated scenario: the dataset, its exact planted truth, and
/// the realized-statistics report.
struct ScenarioData {
  Dataset dataset;
  GroundTruth truth;
  ScenarioReport report;
};

/// Generates a dataset from `spec`. Deterministic in `spec.seed`; invalid
/// specs (empty dimensions, rates outside [0, 1], oversized pools, bad
/// ring size, unsafe names) are refused with InvalidArgument.
[[nodiscard]] Result<ScenarioData> GenerateScenario(const ScenarioSpec& spec);

/// The standard bench matrix: 3 skew profiles x 2 DCR regimes (0.3, 1.0)
/// x {no adversary, copy ring} = 12 cells, plus majority-wrong and
/// near-duplicate cells at both DCR regimes (16 cells total). Cell names
/// are unique and filename-safe. `num_objects <= 0` keeps the per-spec
/// default scale.
std::vector<ScenarioSpec> DefaultScenarioMatrix(int num_objects,
                                                uint64_t seed);

/// The full sweep: 3 skew profiles x DCR {0.05, 0.3, 1.0} x all 4
/// adversary modes = 36 cells.
std::vector<ScenarioSpec> FullScenarioMatrix(int num_objects, uint64_t seed);

}  // namespace tdac

#endif  // TDAC_GEN_SCENARIO_H_
