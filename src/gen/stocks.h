#ifndef TDAC_GEN_STOCKS_H_
#define TDAC_GEN_STOCKS_H_

#include <cstdint>

#include "common/result.h"
#include "gen/grouped_source_sim.h"

namespace tdac {

/// \brief Simulator standing in for the **Stocks** dataset of Li et al.
/// (VLDB 2013), matched to the paper's Table 8 statistics: 55 sources,
/// 100 objects (stock symbols on trading days), 15 attributes in three
/// correlated families (price-like quotes, volume-like counters, metadata),
/// ~57k observations, DCR ~ 75%.
[[nodiscard]] Result<GroupedSimData> GenerateStocks(uint64_t seed = 42);

/// The configuration used by GenerateStocks, for tweaking in ablations.
GroupedSimConfig StocksConfig(uint64_t seed = 42);

}  // namespace tdac

#endif  // TDAC_GEN_STOCKS_H_
