#include "gen/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "data/dataset_builder.h"

namespace tdac {

const char* ToString(SkewProfile profile) {
  switch (profile) {
    case SkewProfile::kRandom:
      return "random";
    case SkewProfile::kEven:
      return "even";
    case SkewProfile::kStacked:
      return "stacked";
  }
  return "unknown";
}

const char* ToString(AdversaryMode mode) {
  switch (mode) {
    case AdversaryMode::kNone:
      return "none";
    case AdversaryMode::kCopyRing:
      return "copy-ring";
    case AdversaryMode::kMajorityWrong:
      return "majority-wrong";
    case AdversaryMode::kNearDuplicate:
      return "near-duplicate";
  }
  return "unknown";
}

namespace {

// Integer value pool shared with gen/synthetic.cc: large enough that
// rejection sampling of a small distinct set terminates after a handful of
// retries.
constexpr int64_t kScenarioValuePool = 1000000000;
constexpr int kMaxFalseValues = 100000;

// Near-duplicate tokens: fixed length over a 36-char alphabet. Decoy j
// edits a contiguous run of `edits` positions starting at j % L, all with
// the per-decoy shift 1 + j / L, which makes every decoy distinct from the
// truth and from every other decoy (distinct runs differ somewhere the
// other decoy matches the truth; equal runs imply distinct shifts).
constexpr int kNearDupTokenLength = 12;
constexpr char kNearDupAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
constexpr int kNearDupAlphabetSize = 36;
constexpr int kMaxNearDupFalseValues = 100;

bool FilenameSafeName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool IsRate(double x) { return std::isfinite(x) && x >= 0.0 && x <= 1.0; }

Status ValidateSpec(const ScenarioSpec& spec) {
  if (!FilenameSafeName(spec.name)) {
    return Status::InvalidArgument(
        "ScenarioSpec: name must be non-empty and filename-safe "
        "([A-Za-z0-9._-]): \"" +
        spec.name + "\"");
  }
  if (spec.num_objects < 1 || spec.num_attributes < 1 ||
      spec.num_sources < 1) {
    return Status::InvalidArgument(
        "ScenarioSpec " + spec.name +
        ": objects, attributes, and sources must all be >= 1");
  }
  if (!std::isfinite(spec.dcr) || spec.dcr <= 0.0 || spec.dcr > 1.0) {
    return Status::InvalidArgument("ScenarioSpec " + spec.name +
                                   ": dcr must be in (0, 1]");
  }
  if (!IsRate(spec.reliable_share) || !IsRate(spec.reliable_accuracy) ||
      !IsRate(spec.unreliable_accuracy) || !IsRate(spec.distractor_rate) ||
      !IsRate(spec.ring_copy_rate) || !IsRate(spec.majority_wrong_share)) {
    return Status::InvalidArgument(
        "ScenarioSpec " + spec.name +
        ": shares, accuracies, and rates must be finite and in [0, 1]");
  }
  const int max_false = spec.adversary == AdversaryMode::kNearDuplicate
                            ? kMaxNearDupFalseValues
                            : kMaxFalseValues;
  if (spec.num_false_values < 1 || spec.num_false_values > max_false) {
    return Status::InvalidArgument(
        "ScenarioSpec " + spec.name + ": num_false_values must be in [1, " +
        std::to_string(max_false) + "] for adversary " +
        ToString(spec.adversary));
  }
  if (spec.adversary == AdversaryMode::kCopyRing &&
      (spec.ring_size < 2 || spec.ring_size > spec.num_sources)) {
    return Status::InvalidArgument(
        "ScenarioSpec " + spec.name +
        ": ring_size must be in [2, num_sources] for copy-ring scenarios");
  }
  if (spec.near_duplicate_edits < 1 ||
      spec.near_duplicate_edits >= kNearDupTokenLength ||
      spec.near_duplicate_edits > 3) {
    return Status::InvalidArgument(
        "ScenarioSpec " + spec.name + ": near_duplicate_edits must be in "
        "[1, 3]");
  }
  return Status::OK();
}

// Per-source inclusion probabilities for the stacked profile: p_s =
// min(1, lambda / (s + 1)), with lambda calibrated by bisection so the
// mean of p_s equals `dcr`. min(1, .) makes the mean continuous and
// nondecreasing in lambda, with range (0, 1], so the bisection always
// converges onto the target.
std::vector<double> StackedInclusionProbs(int num_sources, double dcr) {
  const auto mean_at = [num_sources](double lambda) {
    double sum = 0.0;
    for (int s = 0; s < num_sources; ++s) {
      sum += std::min(1.0, lambda / static_cast<double>(s + 1));
    }
    return sum / static_cast<double>(num_sources);
  };
  double lo = 0.0;
  double hi = static_cast<double>(num_sources);  // mean_at(S) == 1 >= dcr
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (mean_at(mid) < dcr ? lo : hi) = mid;
  }
  const double lambda = 0.5 * (lo + hi);
  std::vector<double> probs(static_cast<size_t>(num_sources));
  for (int s = 0; s < num_sources; ++s) {
    probs[static_cast<size_t>(s)] =
        std::min(1.0, lambda / static_cast<double>(s + 1));
  }
  return probs;
}

// Distinct int64 values via rejection sampling; the pool (10^9) dwarfs any
// valid request (<= kMaxFalseValues + 1), so retries are vanishingly rare.
std::vector<int64_t> DrawDistinctInts(Rng* rng, int count) {
  std::vector<int64_t> values;
  values.reserve(static_cast<size_t>(count));
  std::unordered_set<int64_t> seen;
  while (values.size() < static_cast<size_t>(count)) {
    const int64_t v = rng->NextInt(0, kScenarioValuePool - 1);
    if (seen.insert(v).second) values.push_back(v);
  }
  return values;
}

// Pool of one true token plus `num_false` near-duplicate decoys, each a
// distinct `edits`-substitution variant of the truth.
std::vector<Value> DrawNearDuplicatePool(Rng* rng, int num_false, int edits) {
  std::string truth(kNearDupTokenLength, 'a');
  for (char& c : truth) {
    c = kNearDupAlphabet[rng->NextBounded(kNearDupAlphabetSize)];
  }
  std::vector<Value> pool;
  pool.reserve(static_cast<size_t>(num_false) + 1);
  pool.emplace_back(truth);
  for (int j = 0; j < num_false; ++j) {
    std::string decoy = truth;
    const int shift = 1 + j / kNearDupTokenLength;  // in [1, 35]
    for (int e = 0; e < edits; ++e) {
      const int pos = (j + e) % kNearDupTokenLength;
      const char* found = std::char_traits<char>::find(
          kNearDupAlphabet, kNearDupAlphabetSize, decoy[pos]);
      const int idx = static_cast<int>(found - kNearDupAlphabet);
      decoy[static_cast<size_t>(pos)] =
          kNearDupAlphabet[(idx + shift) % kNearDupAlphabetSize];
    }
    pool.emplace_back(std::move(decoy));
  }
  return pool;
}

std::vector<Value> IntPool(Rng* rng, int num_false) {
  const std::vector<int64_t> ints = DrawDistinctInts(rng, num_false + 1);
  std::vector<Value> pool;
  pool.reserve(ints.size());
  for (int64_t v : ints) pool.emplace_back(v);
  return pool;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void AppendNumber(std::ostringstream* os, double value) {
  const auto old = os->precision(17);
  *os << value;
  os->precision(old);
}

}  // namespace

std::string ScenarioReport::ToJson() const {
  std::ostringstream os;
  os << "{" << JsonQuote("name") << ": " << JsonQuote(name) << ", "
     << JsonQuote("skew") << ": " << JsonQuote(skew) << ", "
     << JsonQuote("adversary") << ": " << JsonQuote(adversary) << ", "
     << JsonQuote("num_objects") << ": " << num_objects << ", "
     << JsonQuote("num_attributes") << ": " << num_attributes << ", "
     << JsonQuote("num_sources") << ": " << num_sources << ", "
     << JsonQuote("num_claims") << ": " << num_claims << ", "
     << JsonQuote("target_dcr") << ": ";
  AppendNumber(&os, target_dcr);
  os << ", " << JsonQuote("realized_dcr") << ": ";
  AppendNumber(&os, realized_dcr);
  os << ", " << JsonQuote("claims_per_source") << ": [";
  for (size_t i = 0; i < claims_per_source.size(); ++i) {
    os << (i ? ", " : "") << claims_per_source[i];
  }
  os << "], " << JsonQuote("source_accuracy") << ": [";
  for (size_t i = 0; i < source_accuracy.size(); ++i) {
    if (i) os << ", ";
    AppendNumber(&os, source_accuracy[i]);
  }
  os << "], " << JsonQuote("ring_members") << ": [";
  for (size_t i = 0; i < ring_members.size(); ++i) {
    os << (i ? ", " : "") << ring_members[i];
  }
  os << "], " << JsonQuote("ring_agreement") << ": ";
  AppendNumber(&os, ring_agreement);
  os << ", " << JsonQuote("majority_wrong_attributes") << ": [";
  for (size_t i = 0; i < majority_wrong_attributes.size(); ++i) {
    os << (i ? ", " : "") << majority_wrong_attributes[i];
  }
  os << "], " << JsonQuote("majority_wrong_items") << ": "
     << majority_wrong_items << ", " << JsonQuote("near_duplicate_items")
     << ": " << near_duplicate_items << "}";
  return os.str();
}

Result<ScenarioData> GenerateScenario(const ScenarioSpec& spec) {
  TDAC_RETURN_NOT_OK(ValidateSpec(spec));
  const int num_objects = spec.num_objects;
  const int num_attributes = spec.num_attributes;
  const int num_sources = spec.num_sources;
  const int num_false = spec.num_false_values;
  Rng rng(spec.seed);

  // Source reliability: a stratified split into reliable / unreliable,
  // with the assignment shuffled so reliability is independent of the skew
  // ordering (which favours low source ids in the stacked profile).
  const int reliable_count = std::clamp(
      static_cast<int>(std::llround(spec.reliable_share * num_sources)), 0,
      num_sources);
  std::vector<int> reliability_perm(static_cast<size_t>(num_sources));
  std::iota(reliability_perm.begin(), reliability_perm.end(), 0);
  rng.Shuffle(&reliability_perm);
  std::vector<double> accuracy(static_cast<size_t>(num_sources),
                               spec.unreliable_accuracy);
  for (int i = 0; i < reliable_count; ++i) {
    accuracy[static_cast<size_t>(reliability_perm[static_cast<size_t>(i)])] =
        spec.reliable_accuracy;
  }

  // The copying ring: a random subset of sources, leader first.
  std::vector<int32_t> ring;
  std::vector<char> in_ring(static_cast<size_t>(num_sources), 0);
  int32_t leader = -1;
  if (spec.adversary == AdversaryMode::kCopyRing) {
    std::vector<int> ring_perm(static_cast<size_t>(num_sources));
    std::iota(ring_perm.begin(), ring_perm.end(), 0);
    rng.Shuffle(&ring_perm);
    for (int i = 0; i < spec.ring_size; ++i) {
      const int32_t s = static_cast<int32_t>(ring_perm[static_cast<size_t>(i)]);
      ring.push_back(s);
      in_ring[static_cast<size_t>(s)] = 1;
    }
    leader = ring[0];
  }

  // Majority-wrong attributes: a random `majority_wrong_share` subset.
  std::vector<char> wrong_attr(static_cast<size_t>(num_attributes), 0);
  std::vector<int32_t> wrong_attr_ids;
  if (spec.adversary == AdversaryMode::kMajorityWrong) {
    const int wrong_count = std::clamp(
        static_cast<int>(
            std::llround(spec.majority_wrong_share * num_attributes)),
        0, num_attributes);
    std::vector<int> attr_perm(static_cast<size_t>(num_attributes));
    std::iota(attr_perm.begin(), attr_perm.end(), 0);
    rng.Shuffle(&attr_perm);
    for (int i = 0; i < wrong_count; ++i) {
      wrong_attr[static_cast<size_t>(attr_perm[static_cast<size_t>(i)])] = 1;
    }
    for (int a = 0; a < num_attributes; ++a) {
      if (wrong_attr[static_cast<size_t>(a)]) {
        wrong_attr_ids.push_back(static_cast<int32_t>(a));
      }
    }
  }

  // Skew machinery: per-source inclusion probabilities (random/stacked) or
  // the exact per-item source count (even).
  std::vector<double> include_prob;
  int even_k = 0;
  switch (spec.skew) {
    case SkewProfile::kRandom:
      include_prob.assign(static_cast<size_t>(num_sources), spec.dcr);
      break;
    case SkewProfile::kStacked:
      include_prob = StackedInclusionProbs(num_sources, spec.dcr);
      break;
    case SkewProfile::kEven:
      even_k = std::clamp(
          static_cast<int>(std::llround(spec.dcr * num_sources)), 1,
          num_sources);
      break;
  }

  DatasetBuilder builder;
  for (int s = 0; s < num_sources; ++s) builder.AddSource("s" + std::to_string(s));
  for (int o = 0; o < num_objects; ++o) builder.AddObject("o" + std::to_string(o));
  for (int a = 0; a < num_attributes; ++a) {
    builder.AddAttribute("a" + std::to_string(a));
  }

  GroundTruth truth;
  std::vector<int64_t> claims_per_source(static_cast<size_t>(num_sources), 0);
  std::vector<int64_t> truthful_per_source(static_cast<size_t>(num_sources),
                                           0);
  int64_t ring_pairs = 0;
  int64_t ring_agree = 0;
  int64_t majority_wrong_items = 0;
  int64_t near_duplicate_items = 0;
  std::vector<Value> first_pool;  // pool of item (0, 0), for forced claims

  // One independent claim: truthful with the (possibly flipped) source
  // accuracy; false claims coalesce on the distractor (pool slot 1) with
  // the distractor rate — always, on majority-wrong attributes.
  const auto draw_claim = [&](int s, bool flipped,
                              const std::vector<Value>& pool) -> const Value& {
    double p_true = accuracy[static_cast<size_t>(s)];
    if (flipped) p_true = 1.0 - p_true;
    if (rng.NextBernoulli(p_true)) return pool[0];
    if (flipped || rng.NextBernoulli(spec.distractor_rate)) return pool[1];
    return pool[1 + rng.NextBounded(static_cast<uint64_t>(num_false))];
  };

  std::vector<int> covered;
  std::vector<int64_t> votes;
  for (int o = 0; o < num_objects; ++o) {
    for (int a = 0; a < num_attributes; ++a) {
      const int64_t item_index =
          static_cast<int64_t>(o) * num_attributes + a;
      // 1. Which sources claim this item.
      covered.clear();
      if (spec.skew == SkewProfile::kEven) {
        const int start = static_cast<int>(item_index % num_sources);
        for (int i = 0; i < even_k; ++i) {
          covered.push_back((start + i) % num_sources);
        }
        std::sort(covered.begin(), covered.end());
      } else {
        for (int s = 0; s < num_sources; ++s) {
          if (rng.NextBernoulli(include_prob[static_cast<size_t>(s)])) {
            covered.push_back(s);
          }
        }
      }
      // Every item keeps at least one claim so no algorithm sees an
      // unclaimable item (the report's realized DCR records the resulting
      // inflation in ultra-sparse regimes).
      if (covered.empty()) {
        covered.push_back(static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(num_sources))));
      }

      // 2. Per-item value pool; slot 0 is the planted truth.
      const std::vector<Value> pool =
          spec.adversary == AdversaryMode::kNearDuplicate
              ? DrawNearDuplicatePool(&rng, num_false,
                                      spec.near_duplicate_edits)
              : IntPool(&rng, num_false);
      if (o == 0 && a == 0) first_pool = pool;
      truth.Set(static_cast<ObjectId>(o), static_cast<AttributeId>(a),
                pool[0]);

      const bool flipped = wrong_attr[static_cast<size_t>(a)] != 0;

      // 3. The ring leader draws first so members can copy regardless of
      // their position in the source order.
      const bool leader_covered =
          leader >= 0 &&
          std::find(covered.begin(), covered.end(), leader) != covered.end();
      Value leader_value;
      if (leader_covered) leader_value = draw_claim(leader, flipped, pool);

      votes.assign(pool.size(), 0);
      for (int s : covered) {
        Value value;
        if (s == leader && leader_covered) {
          value = leader_value;
        } else if (in_ring[static_cast<size_t>(s)] && leader_covered &&
                   rng.NextBernoulli(spec.ring_copy_rate)) {
          value = leader_value;
        } else {
          value = draw_claim(s, flipped, pool);
        }
        if (in_ring[static_cast<size_t>(s)] && s != leader &&
            leader_covered) {
          ++ring_pairs;
          if (value == leader_value) ++ring_agree;
        }
        for (size_t p = 0; p < pool.size(); ++p) {
          if (pool[p] == value) {
            ++votes[p];
            break;
          }
        }
        ++claims_per_source[static_cast<size_t>(s)];
        if (value == pool[0]) ++truthful_per_source[static_cast<size_t>(s)];
        TDAC_RETURN_NOT_OK(builder.AddClaim(
            static_cast<SourceId>(s), static_cast<ObjectId>(o),
            static_cast<AttributeId>(a), std::move(value)));
      }

      if (flipped) {
        const int64_t max_false_votes =
            *std::max_element(votes.begin() + 1, votes.end());
        if (max_false_votes > votes[0]) ++majority_wrong_items;
      }
      if (spec.adversary == AdversaryMode::kNearDuplicate) {
        int distinct = 0;
        for (int64_t v : votes) distinct += v > 0;
        if (distinct >= 2) ++near_duplicate_items;
      }
    }
  }

  // Every source keeps at least one claim (a claimless source would make
  // per-source statistics — here and in several algorithms — 0/0). Forced
  // claims land on item (0, 0), whose per-item diagnostics above are
  // already final; only the per-source counters track them.
  for (int s = 0; s < num_sources; ++s) {
    if (claims_per_source[static_cast<size_t>(s)] > 0) continue;
    const bool flipped = wrong_attr[0] != 0;
    Value value = draw_claim(s, flipped, first_pool);
    ++claims_per_source[static_cast<size_t>(s)];
    if (value == first_pool[0]) {
      ++truthful_per_source[static_cast<size_t>(s)];
    }
    TDAC_RETURN_NOT_OK(builder.AddClaim(static_cast<SourceId>(s),
                                        static_cast<ObjectId>(0),
                                        static_cast<AttributeId>(0),
                                        std::move(value)));
  }

  ScenarioData out;
  TDAC_ASSIGN_OR_RETURN(out.dataset, builder.Build());
  out.truth = std::move(truth);

  ScenarioReport& report = out.report;
  report.name = spec.name;
  report.skew = ToString(spec.skew);
  report.adversary = ToString(spec.adversary);
  report.num_objects = num_objects;
  report.num_attributes = num_attributes;
  report.num_sources = num_sources;
  report.num_claims = out.dataset.num_claims();
  report.target_dcr = spec.dcr;
  report.realized_dcr =
      static_cast<double>(report.num_claims) /
      (static_cast<double>(num_sources) * num_objects * num_attributes);
  report.claims_per_source = std::move(claims_per_source);
  report.source_accuracy.resize(static_cast<size_t>(num_sources), 0.0);
  for (int s = 0; s < num_sources; ++s) {
    const int64_t total = report.claims_per_source[static_cast<size_t>(s)];
    report.source_accuracy[static_cast<size_t>(s)] =
        total > 0 ? static_cast<double>(
                        truthful_per_source[static_cast<size_t>(s)]) /
                        static_cast<double>(total)
                  : 0.0;
  }
  report.ring_members = std::move(ring);
  report.ring_agreement =
      ring_pairs > 0
          ? static_cast<double>(ring_agree) / static_cast<double>(ring_pairs)
          : 0.0;
  report.majority_wrong_attributes = std::move(wrong_attr_ids);
  report.majority_wrong_items = majority_wrong_items;
  report.near_duplicate_items = near_duplicate_items;
  return out;
}

namespace {

std::string DcrTag(double dcr) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "d%03d",
                static_cast<int>(std::llround(dcr * 100)));
  return buf;
}

const char* AdversaryTag(AdversaryMode mode) {
  switch (mode) {
    case AdversaryMode::kNone:
      return "none";
    case AdversaryMode::kCopyRing:
      return "ring";
    case AdversaryMode::kMajorityWrong:
      return "majwrong";
    case AdversaryMode::kNearDuplicate:
      return "neardup";
  }
  return "unknown";
}

ScenarioSpec MatrixCell(SkewProfile skew, double dcr, AdversaryMode adversary,
                        int num_objects, uint64_t seed, size_t index) {
  ScenarioSpec spec;
  spec.name = std::string(ToString(skew)) + "-" + DcrTag(dcr) + "-" +
              AdversaryTag(adversary);
  if (num_objects > 0) spec.num_objects = num_objects;
  spec.skew = skew;
  spec.dcr = dcr;
  spec.adversary = adversary;
  // Distinct deterministic stream per cell, stable under matrix reordering
  // only through (seed, index) — cells are appended, never reordered.
  spec.seed = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  return spec;
}

constexpr SkewProfile kAllSkews[] = {SkewProfile::kRandom, SkewProfile::kEven,
                                     SkewProfile::kStacked};

}  // namespace

std::vector<ScenarioSpec> DefaultScenarioMatrix(int num_objects,
                                                uint64_t seed) {
  std::vector<ScenarioSpec> matrix;
  for (SkewProfile skew : kAllSkews) {
    for (double dcr : {0.3, 1.0}) {
      for (AdversaryMode adversary :
           {AdversaryMode::kNone, AdversaryMode::kCopyRing}) {
        matrix.push_back(MatrixCell(skew, dcr, adversary, num_objects, seed,
                                    matrix.size()));
      }
    }
  }
  // The two remaining adversarial structures, at both DCR regimes, on the
  // baseline skew.
  for (double dcr : {0.3, 1.0}) {
    for (AdversaryMode adversary :
         {AdversaryMode::kMajorityWrong, AdversaryMode::kNearDuplicate}) {
      matrix.push_back(MatrixCell(SkewProfile::kRandom, dcr, adversary,
                                  num_objects, seed, matrix.size()));
    }
  }
  return matrix;
}

std::vector<ScenarioSpec> FullScenarioMatrix(int num_objects, uint64_t seed) {
  std::vector<ScenarioSpec> matrix;
  for (SkewProfile skew : kAllSkews) {
    for (double dcr : {0.05, 0.3, 1.0}) {
      for (AdversaryMode adversary :
           {AdversaryMode::kNone, AdversaryMode::kCopyRing,
            AdversaryMode::kMajorityWrong, AdversaryMode::kNearDuplicate}) {
        matrix.push_back(MatrixCell(skew, dcr, adversary, num_objects, seed,
                                    matrix.size()));
      }
    }
  }
  return matrix;
}

}  // namespace tdac
