#include "gen/flights.h"

namespace tdac {

GroupedSimConfig FlightsConfig(uint64_t seed) {
  GroupedSimConfig config;
  config.name = "flights";
  config.num_sources = 38;
  config.num_objects = 100;
  config.families = {{"sched", 2}, {"actual", 2}, {"gate", 2}};
  // Two-level coverage calibrated to ~8.6k observations and DCR ~ 66%
  // (38 * 100 * 6 * 0.575 * 0.66 ~ 8,650).
  config.object_cover_rate = 0.575;
  config.attr_answer_rate = 0.66;
  config.base_mean = 0.78;
  config.base_spread = 0.09;
  config.family_spread = 0.15;
  // Milder unreliability than Stocks: the paper's Flights numbers are high
  // for every algorithm, with only a small TD-AC gain (Table 9e).
  config.low_fraction = 0.2;
  config.low_reliability = 0.25;
  config.distractor_rate = 0.5;
  config.num_false_values = 30;
  config.seed = seed;
  return config;
}

Result<GroupedSimData> GenerateFlights(uint64_t seed) {
  return GenerateGroupedSim(FlightsConfig(seed));
}

}  // namespace tdac
