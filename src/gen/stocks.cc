#include "gen/stocks.h"

namespace tdac {

GroupedSimConfig StocksConfig(uint64_t seed) {
  GroupedSimConfig config;
  config.name = "stocks";
  config.num_sources = 55;
  config.num_objects = 100;
  config.families = {{"price", 6}, {"volume", 5}, {"meta", 4}};
  // Two-level coverage calibrated to ~57k observations and DCR ~ 75%
  // (55 * 100 * 15 * 0.92 * 0.75 ~ 56,900).
  config.object_cover_rate = 0.92;
  config.attr_answer_rate = 0.75;
  config.base_mean = 0.80;
  config.base_spread = 0.08;
  config.family_spread = 0.14;
  // Roughly a third of (source, family) cells are broken feeds whose wrong
  // values coalesce on stale quotes — the regime where the paper reports a
  // clear TD-AC gain on Stocks (Table 9d).
  config.low_fraction = 0.35;
  config.low_reliability = 0.18;
  config.distractor_rate = 0.75;
  config.num_false_values = 40;
  config.seed = seed;
  return config;
}

Result<GroupedSimData> GenerateStocks(uint64_t seed) {
  return GenerateGroupedSim(StocksConfig(seed));
}

}  // namespace tdac
