#ifndef TDAC_GEN_CORRUPT_H_
#define TDAC_GEN_CORRUPT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tdac {

/// \brief Seeded fault injection for claim-file CSV text.
///
/// Each mode simulates one real-world way a claim feed goes bad. The
/// corruptor works on the *textual* claim CSV (not a built Dataset) so it
/// can produce malformations — short rows, garbled bytes, "nan" literals —
/// that the typed in-memory representation could never hold. The
/// robustness suite feeds every mode to every registered algorithm and
/// asserts the stack either refuses the input with a Status naming the
/// offending line or returns a finite, stop-reason-labeled result.
enum class CorruptionMode {
  /// Randomly drops trailing fields from data rows (interrupted writes).
  kTruncateRows = 0,
  /// Overwrites random bytes with junk, including quotes and delimiters
  /// (bit rot / encoding bugs); may break the CSV framing itself.
  kGarbleBytes = 1,
  /// Replaces numeric values with "nan" / "inf" / "-inf" literals.
  kNonFiniteValues = 2,
  /// Replaces numeric values with astronomically large magnitudes that
  /// overflow naive exponentials downstream.
  kWildValues = 3,
  /// Emits exact duplicates of random claim rows (at-least-once feeds).
  kDuplicateClaims = 4,
  /// Adds a second claim by the same source for the same (object,
  /// attribute) with a different value (self-contradicting source).
  kContradictoryClaims = 5,
  /// Rewrites the object of random rows to a fresh unique object, creating
  /// objects covered by exactly one source (no corroboration possible).
  kSingleSourceObjects = 6,
  /// Forces every claim of one attribute to a single constant value
  /// (zero-variance column: empty disagreement, degenerate clustering).
  kConstantAttribute = 7,
  /// Deletes every claim of one attribute (dead column; with rate >= 1 and
  /// a single-attribute dataset this yields an empty claim file).
  kEmptyAttribute = 8,
};

/// All modes, in enum order — the robustness suite iterates this.
const std::vector<CorruptionMode>& AllCorruptionModes();

std::string_view CorruptionModeName(CorruptionMode mode);

struct CorruptionOptions {
  CorruptionMode mode = CorruptionMode::kTruncateRows;

  /// Seed for the corruptor's own Rng; same seed + same input -> same
  /// corrupted bytes.
  uint64_t seed = 42;

  /// Fraction of eligible rows (or bytes, for kGarbleBytes) hit. At least
  /// one site is always corrupted, so rate 0 still injects one fault.
  double rate = 0.25;
};

/// Returns a corrupted copy of `claim_csv` (a claim file as produced by
/// DatasetToCsv). The header row is never touched. Input that does not
/// parse as CSV is byte-garbled instead of row-corrupted, so the function
/// always injects *something*.
[[nodiscard]]
std::string CorruptClaimCsv(const std::string& claim_csv,
                            const CorruptionOptions& options);

}  // namespace tdac

#endif  // TDAC_GEN_CORRUPT_H_
