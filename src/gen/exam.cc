#include "gen/exam.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "data/dataset_builder.h"

namespace tdac {

namespace {

/// Domain kinds drive the coverage rules.
enum class DomainKind { kMandatory, kChoiceA, kChoiceB, kOptional };

struct DomainSpec {
  const char* name;
  int questions;
  DomainKind kind;
};

constexpr DomainSpec kDomains[] = {
    {"Math 1A", 15, DomainKind::kMandatory},
    {"Physics", 17, DomainKind::kMandatory},
    {"Chemistry 1", 15, DomainKind::kChoiceA},
    {"Math 1B", 15, DomainKind::kChoiceB},
    {"Electrical Engineering", 13, DomainKind::kOptional},
    {"Computer Science", 13, DomainKind::kOptional},
    {"Chemistry 2", 12, DomainKind::kOptional},
    {"Science of life", 12, DomainKind::kOptional},
    {"Math 2", 12, DomainKind::kOptional},
};

std::vector<int64_t> DrawDistinctValues(Rng* rng, int count) {
  std::unordered_set<int64_t> seen;
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(count));
  while (static_cast<int>(out.size()) < count) {
    int64_t v = rng->NextInt(0, 999999999);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::string, int>> ExamDomainLayout() {
  std::vector<std::pair<std::string, int>> out;
  for (const DomainSpec& d : kDomains) out.emplace_back(d.name, d.questions);
  return out;
}

Result<ExamData> GenerateExam(const ExamConfig& config) {
  if (config.num_students < 2) {
    return Status::InvalidArgument("exam: need >= 2 students");
  }
  if (config.num_questions < 1 || config.num_questions > 124) {
    return Status::InvalidArgument("exam: num_questions must be in [1, 124]");
  }
  if (config.false_range < 1) {
    return Status::InvalidArgument("exam: false_range must be >= 1");
  }

  Rng rng(config.seed);
  const int num_domains = static_cast<int>(std::size(kDomains));

  // Domain of every question in the canonical order.
  std::vector<int> domain_of_question;
  for (int d = 0; d < num_domains; ++d) {
    for (int q = 0; q < kDomains[d].questions; ++q) {
      domain_of_question.push_back(d);
    }
  }
  TDAC_CHECK(domain_of_question.size() == 124) << "exam layout must total 124";

  ExamData out;

  // Per-(student, domain) ability: a student-level ability plus an
  // independent per-domain offset — reliability is constant within a domain
  // (the structural correlation TD-AC exploits).
  out.ability.assign(static_cast<size_t>(config.num_students),
                     std::vector<double>(static_cast<size_t>(num_domains)));
  for (int s = 0; s < config.num_students; ++s) {
    double base = rng.NextGaussian(config.ability_mean, config.ability_spread);
    for (int d = 0; d < num_domains; ++d) {
      out.ability[static_cast<size_t>(s)][static_cast<size_t>(d)] =
          Clamp(base + rng.NextGaussian(0.0, config.domain_spread), 0.05,
                0.98);
    }
  }

  // Enrolment: mandatory domains for everyone; one of the two choice
  // domains; optional domains independently.
  std::vector<std::vector<char>> enrolled(
      static_cast<size_t>(config.num_students),
      std::vector<char>(static_cast<size_t>(num_domains), 0));
  for (int s = 0; s < config.num_students; ++s) {
    const bool picks_a = rng.NextBernoulli(0.5);
    for (int d = 0; d < num_domains; ++d) {
      switch (kDomains[d].kind) {
        case DomainKind::kMandatory:
          enrolled[static_cast<size_t>(s)][static_cast<size_t>(d)] = 1;
          break;
        case DomainKind::kChoiceA:
          enrolled[static_cast<size_t>(s)][static_cast<size_t>(d)] = picks_a;
          break;
        case DomainKind::kChoiceB:
          enrolled[static_cast<size_t>(s)][static_cast<size_t>(d)] = !picks_a;
          break;
        case DomainKind::kOptional:
          enrolled[static_cast<size_t>(s)][static_cast<size_t>(d)] =
              rng.NextBernoulli(config.optional_enroll_rate);
          break;
      }
    }
  }

  auto answer_rate = [&](DomainKind kind) {
    switch (kind) {
      case DomainKind::kMandatory:
        return config.mandatory_answer_rate;
      case DomainKind::kChoiceA:
      case DomainKind::kChoiceB:
        return config.choice_answer_rate;
      case DomainKind::kOptional:
        return config.optional_answer_rate;
    }
    return 0.0;
  };

  DatasetBuilder builder;
  std::vector<SourceId> students(static_cast<size_t>(config.num_students));
  for (int s = 0; s < config.num_students; ++s) {
    students[static_cast<size_t>(s)] =
        builder.AddSource("Student" + std::to_string(s + 1));
  }
  ObjectId exam = builder.AddObject("Exam");
  std::vector<AttributeId> questions(
      static_cast<size_t>(config.num_questions));
  for (int q = 0; q < config.num_questions; ++q) {
    questions[static_cast<size_t>(q)] =
        builder.AddAttribute("Q" + std::to_string(q + 1));
  }

  for (int q = 0; q < config.num_questions; ++q) {
    const int d = domain_of_question[static_cast<size_t>(q)];
    std::vector<int64_t> pool =
        DrawDistinctValues(&rng, config.false_range + 1);
    const Value correct(pool[0]);
    const Value misconception(pool.size() > 1 ? pool[1] : pool[0]);
    const double difficulty =
        rng.NextDouble(-config.difficulty_spread, config.difficulty_spread);
    out.truth.Set(exam, questions[static_cast<size_t>(q)], correct);
    for (int s = 0; s < config.num_students; ++s) {
      bool answers =
          enrolled[static_cast<size_t>(s)][static_cast<size_t>(d)] &&
          rng.NextBernoulli(answer_rate(kDomains[d].kind));
      Value claimed;
      if (answers) {
        const double p_correct =
            Clamp(out.ability[static_cast<size_t>(s)][static_cast<size_t>(d)] +
                      difficulty,
                  0.02, 0.98);
        if (rng.NextBernoulli(p_correct)) {
          claimed = correct;
        } else if (rng.NextBernoulli(config.misconception_rate)) {
          claimed = misconception;
        } else {
          claimed = Value(pool[1 + rng.NextBounded(static_cast<uint64_t>(
                        config.false_range))]);
        }
      } else if (config.fill_missing) {
        // Semi-synthetic: unanswered questions get a random false answer.
        claimed = Value(pool[1 + rng.NextBounded(
            static_cast<uint64_t>(config.false_range))]);
      } else {
        continue;
      }
      TDAC_RETURN_NOT_OK(builder.AddClaim(students[static_cast<size_t>(s)],
                                          exam,
                                          questions[static_cast<size_t>(q)],
                                          std::move(claimed)));
    }
  }

  TDAC_ASSIGN_OR_RETURN(out.dataset, builder.Build());

  // Domain partition over the generated questions.
  std::vector<std::vector<AttributeId>> groups(
      static_cast<size_t>(num_domains));
  for (int q = 0; q < config.num_questions; ++q) {
    groups[static_cast<size_t>(domain_of_question[static_cast<size_t>(q)])]
        .push_back(questions[static_cast<size_t>(q)]);
  }
  std::vector<std::vector<AttributeId>> non_empty;
  for (int d = 0; d < num_domains; ++d) {
    if (!groups[static_cast<size_t>(d)].empty()) {
      out.domains.emplace_back(kDomains[d].name,
                               static_cast<int>(groups[static_cast<size_t>(d)].size()));
      non_empty.push_back(std::move(groups[static_cast<size_t>(d)]));
    }
  }
  TDAC_ASSIGN_OR_RETURN(out.domain_partition,
                        AttributePartition::FromGroups(std::move(non_empty)));
  return out;
}

}  // namespace tdac
