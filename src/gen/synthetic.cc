#include "gen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "data/dataset_builder.h"

namespace tdac {

namespace {

/// The drawable domain of per-item candidate values, [0, kValuePool).
constexpr int64_t kValuePool = 1000000000;

/// Ceiling on distinct values drawable per item. Rejection sampling keeps
/// its expected cost linear only while the pool stays mostly empty; at half
/// the domain the expected redraws per accepted value are already 2x and
/// grow without bound toward the full domain (an exact-domain request would
/// never terminate once the pool is exhausted). Requests past the ceiling
/// are a config error, refused up front.
constexpr int64_t kMaxDistinctDraws = kValuePool / 2;

/// Draws `count` distinct int64 values for one data item's candidate pool.
Result<std::vector<int64_t>> DrawDistinctValues(Rng* rng, int count) {
  if (count < 0 || count > kMaxDistinctDraws) {
    return Status::InvalidArgument(
        "synthetic: cannot draw " + std::to_string(count) +
        " distinct values from a pool of " + std::to_string(kValuePool) +
        " (max " + std::to_string(kMaxDistinctDraws) + ")");
  }
  std::unordered_set<int64_t> seen;
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(count));
  while (static_cast<int>(out.size()) < count) {
    int64_t v = rng->NextInt(0, kValuePool - 1);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

/// Assigns a reliability level to every (source, group) cell, either by
/// independent weighted draws or stratified per group (exact proportions,
/// shuffled source-to-level mapping).
Result<std::vector<std::vector<double>>> AssignReliability(
    Rng* rng, int num_sources, size_t num_groups,
    const std::vector<double>& levels, const std::vector<double>& weights,
    bool stratified, double noise) {
  if (!weights.empty() && weights.size() != levels.size()) {
    return Status::InvalidArgument(
        "synthetic: level_weights must match reliability_levels");
  }
  bool all_zero_weights = !weights.empty();
  for (double x : weights) {
    if (!std::isfinite(x) || x < 0.0) {
      return Status::InvalidArgument(
          "synthetic: level_weights must be finite and non-negative");
    }
    if (x > 0.0) all_zero_weights = false;
  }
  std::vector<std::vector<double>> reliability(
      static_cast<size_t>(num_sources), std::vector<double>(num_groups, 0.0));
  auto perturb = [&](double level) {
    if (noise > 0.0) {
      level = Clamp(level + rng->NextGaussian(0.0, noise), 0.0, 1.0);
    }
    return level;
  };
  if (stratified) {
    const size_t num_levels = levels.size();
    std::vector<double> w = weights;
    // All-zero weights mean uniform, matching Rng::NextWeighted on the
    // independent-draw path below. Without this, total_weight would be 0
    // and the int cast of `exact` (inf/NaN) below is undefined behavior.
    if (w.empty() || all_zero_weights) w.assign(num_levels, 1.0);
    double total_weight = 0.0;
    for (double x : w) total_weight += x;
    for (size_t g = 0; g < num_groups; ++g) {
      // Largest-remainder apportionment of the sources over the levels:
      // floors first, then the leftover seats to the largest fractional
      // parts (ties broken toward the lower level index, so equal-weight
      // splits of an odd source count are deterministic).
      std::vector<int> counts(num_levels, 0);
      std::vector<std::pair<double, size_t>> remainders;
      int assigned = 0;
      for (size_t j = 0; j < num_levels; ++j) {
        double exact = num_sources * w[j] / total_weight;
        counts[j] = static_cast<int>(exact);
        assigned += counts[j];
        remainders.emplace_back(-(exact - counts[j]), j);
      }
      std::sort(remainders.begin(), remainders.end());
      for (size_t r = 0; assigned < num_sources; ++r, ++assigned) {
        ++counts[remainders[r % num_levels].second];
      }
      std::vector<size_t> level_of;
      for (size_t j = 0; j < num_levels; ++j) {
        for (int c = 0; c < counts[j]; ++c) level_of.push_back(j);
      }
      rng->Shuffle(&level_of);
      for (int s = 0; s < num_sources; ++s) {
        reliability[static_cast<size_t>(s)][g] =
            perturb(levels[level_of[static_cast<size_t>(s)]]);
      }
    }
  } else {
    for (int s = 0; s < num_sources; ++s) {
      for (size_t g = 0; g < num_groups; ++g) {
        size_t pick = weights.empty() ? rng->NextBounded(levels.size())
                                      : rng->NextWeighted(weights);
        reliability[static_cast<size_t>(s)][g] = perturb(levels[pick]);
      }
    }
  }
  return reliability;
}

}  // namespace

Result<GeneratedData> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.num_objects < 1 || config.num_sources < 1) {
    return Status::InvalidArgument("synthetic: need >= 1 object and source");
  }
  if (config.planted_groups.empty()) {
    return Status::InvalidArgument("synthetic: planted_groups required");
  }
  if (config.reliability_levels.empty()) {
    return Status::InvalidArgument("synthetic: reliability_levels required");
  }
  if (config.num_false_values < 1) {
    return Status::InvalidArgument("synthetic: need >= 1 false value");
  }
  if (config.num_false_values >= kMaxDistinctDraws) {
    // Checked before the +1 below can overflow and before any generation
    // work: the per-item pool (false values plus the truth) must stay
    // drawable from the finite value domain.
    return Status::InvalidArgument(
        "synthetic: num_false_values " +
        std::to_string(config.num_false_values) + " exceeds the drawable pool");
  }
  if (config.coverage <= 0.0 || config.coverage > 1.0) {
    return Status::InvalidArgument("synthetic: coverage must be in (0, 1]");
  }

  TDAC_ASSIGN_OR_RETURN(AttributePartition planted,
                        AttributePartition::FromGroups(config.planted_groups));
  const int num_attrs = static_cast<int>(planted.num_attributes());
  {
    // The groups must cover 0..A-1 contiguously.
    std::vector<AttributeId> all = planted.Attributes();
    for (int a = 0; a < num_attrs; ++a) {
      if (all[static_cast<size_t>(a)] != a) {
        return Status::InvalidArgument(
            "synthetic: planted groups must partition attributes 0..A-1");
      }
    }
  }

  Rng rng(config.seed);

  // Per (source, group) reliability level.
  GeneratedData out;
  out.planted = planted;
  TDAC_ASSIGN_OR_RETURN(
      out.reliability,
      AssignReliability(&rng, config.num_sources, planted.num_groups(),
                        config.reliability_levels, config.level_weights,
                        config.stratified_levels, config.level_noise));

  DatasetBuilder builder;
  std::vector<SourceId> source_ids(static_cast<size_t>(config.num_sources));
  for (int s = 0; s < config.num_sources; ++s) {
    source_ids[static_cast<size_t>(s)] =
        builder.AddSource("S" + std::to_string(s + 1));
  }
  std::vector<AttributeId> attr_ids(static_cast<size_t>(num_attrs));
  for (int a = 0; a < num_attrs; ++a) {
    attr_ids[static_cast<size_t>(a)] =
        builder.AddAttribute("A" + std::to_string(a + 1));
  }

  // Group of each attribute, resolved once.
  std::vector<int> group_of(static_cast<size_t>(num_attrs));
  for (int a = 0; a < num_attrs; ++a) {
    group_of[static_cast<size_t>(a)] = planted.GroupOf(a);
  }

  for (int o = 0; o < config.num_objects; ++o) {
    ObjectId oid = builder.AddObject("O" + std::to_string(o + 1));
    for (int a = 0; a < num_attrs; ++a) {
      TDAC_ASSIGN_OR_RETURN(
          std::vector<int64_t> pool,
          DrawDistinctValues(&rng, config.num_false_values + 1));
      const Value truth(pool[0]);
      out.truth.Set(oid, attr_ids[static_cast<size_t>(a)], truth);
      const int g = group_of[static_cast<size_t>(a)];
      for (int s = 0; s < config.num_sources; ++s) {
        if (!rng.NextBernoulli(config.coverage)) continue;
        const double r = out.reliability[static_cast<size_t>(s)]
                                        [static_cast<size_t>(g)];
        Value claimed;
        if (rng.NextBernoulli(r)) {
          claimed = truth;
        } else if (rng.NextBernoulli(config.distractor_rate)) {
          claimed = Value(pool[1]);  // the item's canonical wrong value
        } else {
          claimed = Value(pool[1 + rng.NextBounded(
              static_cast<uint64_t>(config.num_false_values))]);
        }
        TDAC_RETURN_NOT_OK(builder.AddClaim(
            source_ids[static_cast<size_t>(s)], oid,
            attr_ids[static_cast<size_t>(a)], std::move(claimed)));
      }
    }
  }

  TDAC_ASSIGN_OR_RETURN(out.dataset, builder.Build());
  return out;
}

Result<ObjectCorrelatedData> GenerateObjectCorrelated(
    const ObjectCorrelatedConfig& config) {
  if (config.num_attributes < 1 || config.num_sources < 1) {
    return Status::InvalidArgument(
        "object-correlated: need >= 1 attribute and source");
  }
  if (config.planted_groups.empty()) {
    return Status::InvalidArgument("object-correlated: planted_groups required");
  }
  if (config.reliability_levels.empty()) {
    return Status::InvalidArgument(
        "object-correlated: reliability_levels required");
  }
  if (config.num_false_values < 1) {
    return Status::InvalidArgument("object-correlated: need >= 1 false value");
  }
  if (config.num_false_values >= kMaxDistinctDraws) {
    return Status::InvalidArgument(
        "object-correlated: num_false_values " +
        std::to_string(config.num_false_values) + " exceeds the drawable pool");
  }
  if (config.coverage <= 0.0 || config.coverage > 1.0) {
    return Status::InvalidArgument(
        "object-correlated: coverage must be in (0, 1]");
  }

  // Validate that the groups partition 0..O-1 and index them.
  int num_objects = 0;
  for (const auto& g : config.planted_groups) {
    num_objects += static_cast<int>(g.size());
  }
  std::vector<int> group_of(static_cast<size_t>(num_objects), -1);
  for (size_t g = 0; g < config.planted_groups.size(); ++g) {
    for (ObjectId o : config.planted_groups[g]) {
      if (o < 0 || o >= num_objects ||
          group_of[static_cast<size_t>(o)] != -1) {
        return Status::InvalidArgument(
            "object-correlated: planted groups must partition objects "
            "0..O-1");
      }
      group_of[static_cast<size_t>(o)] = static_cast<int>(g);
    }
  }

  Rng rng(config.seed);
  ObjectCorrelatedData out;
  out.planted = config.planted_groups;
  TDAC_ASSIGN_OR_RETURN(
      out.reliability,
      AssignReliability(&rng, config.num_sources,
                        config.planted_groups.size(),
                        config.reliability_levels, config.level_weights,
                        config.stratified_levels, config.level_noise));

  DatasetBuilder builder;
  std::vector<SourceId> source_ids(static_cast<size_t>(config.num_sources));
  for (int s = 0; s < config.num_sources; ++s) {
    source_ids[static_cast<size_t>(s)] =
        builder.AddSource("S" + std::to_string(s + 1));
  }
  std::vector<AttributeId> attr_ids(
      static_cast<size_t>(config.num_attributes));
  for (int a = 0; a < config.num_attributes; ++a) {
    attr_ids[static_cast<size_t>(a)] =
        builder.AddAttribute("A" + std::to_string(a + 1));
  }

  for (int o = 0; o < num_objects; ++o) {
    ObjectId oid = builder.AddObject("O" + std::to_string(o + 1));
    const int g = group_of[static_cast<size_t>(o)];
    for (int a = 0; a < config.num_attributes; ++a) {
      TDAC_ASSIGN_OR_RETURN(
          std::vector<int64_t> pool,
          DrawDistinctValues(&rng, config.num_false_values + 1));
      const Value truth(pool[0]);
      out.truth.Set(oid, attr_ids[static_cast<size_t>(a)], truth);
      for (int s = 0; s < config.num_sources; ++s) {
        if (!rng.NextBernoulli(config.coverage)) continue;
        const double r = out.reliability[static_cast<size_t>(s)]
                                        [static_cast<size_t>(g)];
        Value claimed;
        if (rng.NextBernoulli(r)) {
          claimed = truth;
        } else if (rng.NextBernoulli(config.distractor_rate)) {
          claimed = Value(pool[1]);
        } else {
          claimed = Value(pool[1 + rng.NextBounded(
              static_cast<uint64_t>(config.num_false_values))]);
        }
        TDAC_RETURN_NOT_OK(builder.AddClaim(
            source_ids[static_cast<size_t>(s)], oid,
            attr_ids[static_cast<size_t>(a)], std::move(claimed)));
      }
    }
  }
  TDAC_ASSIGN_OR_RETURN(out.dataset, builder.Build());
  return out;
}

Result<SyntheticConfig> PaperSyntheticConfig(int which, uint64_t seed) {
  SyntheticConfig config;
  config.seed = seed;
  // Difficulty calibration (see DESIGN.md): per group, half the sources are
  // unreliable (stratified so no group degenerates into an unrecoverable
  // all-bad regime), and unreliable claims coalesce on a per-item
  // distractor value 80% of the time. This reproduces the paper's Table 4
  // shape: majority voting breaks on distractor near-ties, global Accu
  // partially recovers, partitioned Accu (Oracle / TD-AC) nearly fully.
  config.distractor_rate = 0.8;
  config.num_false_values = 10;
  config.level_weights = {0.25, 0.5, 0.25};
  config.stratified_levels = true;
  std::string planted_text;
  switch (which) {
    case 1:
      config.reliability_levels = {1.0, 0.0, 1.0};
      config.level_noise = 0.0;
      planted_text = "[(1,2),(4,6),(3),(5)]";
      break;
    case 2:
      config.reliability_levels = {1.0, 0.0, 0.8};
      config.level_noise = 0.0;
      planted_text = "[(2,5),(1,4),(3,6)]";
      break;
    case 3:
      config.reliability_levels = {1.0, 0.2, 0.8};
      config.level_noise = 0.05;
      planted_text = "[(1,6,3),(2,4,5)]";
      break;
    default:
      return Status::InvalidArgument(
          "PaperSyntheticConfig: which must be 1, 2, or 3");
  }
  TDAC_ASSIGN_OR_RETURN(AttributePartition planted,
                        AttributePartition::Parse(planted_text));
  config.planted_groups = planted.groups();
  return config;
}

}  // namespace tdac
