#ifndef TDAC_GEN_SYNTHETIC_H_
#define TDAC_GEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/ground_truth.h"
#include "partition/attribute_partition.h"

namespace tdac {

/// \brief Configuration of the synthetic generator (re-implementation of
/// the generator of Ba et al., WebDB 2015, used for DS1/DS2/DS3).
///
/// The generator plants a partition of the attributes into structurally
/// correlated groups: every source draws, per group, one reliability level
/// from `reliability_levels` (optionally perturbed by Gaussian noise), and
/// that level is its probability of claiming the true value for *every*
/// attribute of the group — which is exactly the paper's definition of
/// structural correlation.
struct SyntheticConfig {
  int num_objects = 1000;
  int num_sources = 10;

  /// Planted groups of 0-based attribute ids; must partition [0, A).
  std::vector<std::vector<AttributeId>> planted_groups;

  /// The (m1, m2, m3) accuracy levels of Table 3.
  std::vector<double> reliability_levels = {1.0, 0.0, 1.0};

  /// Mixing weights of the levels when drawing a (source, group) cell.
  /// Empty means uniform. Skewing mass toward the unreliable level makes
  /// unreliable-majority groups (where unpartitioned algorithms break)
  /// more frequent.
  std::vector<double> level_weights;

  /// When true, each group receives a *stratified* level assignment: the
  /// level proportions given by level_weights are met exactly (up to
  /// rounding) by every group, with the source-to-level mapping shuffled
  /// independently per group. This keeps each group in the regime where
  /// the reliable minority is recoverable (no group degenerates to 1-2
  /// reliable sources, which no algorithm could fix), while sources still
  /// differ across groups — the paper's structural-correlation setting.
  bool stratified_levels = false;

  /// Gaussian noise added to the drawn level (clamped to [0, 1]); DS3-style
  /// relaxation of the structural-correlation assumption.
  double level_noise = 0.0;

  /// Size of the per-item pool of false values.
  int num_false_values = 20;

  /// Probability that a false claim uses the item's canonical *distractor*
  /// value (pool slot 1) instead of a uniform draw from the pool. Unreliable
  /// real-world sources are systematically wrong (stale mirrors, common
  /// misconceptions), so their errors coalesce; this is what makes
  /// unpartitioned truth discovery fail on attribute groups where the
  /// unreliable sources form a majority, reproducing the paper's gap
  /// between standard algorithms and the partitioning ones.
  double distractor_rate = 0.0;

  /// Probability a source claims a given (object, attribute) item.
  double coverage = 1.0;

  uint64_t seed = 42;
};

/// \brief A generated dataset plus everything the experiments need to know
/// about how it was made.
struct GeneratedData {
  Dataset dataset;
  GroundTruth truth;
  AttributePartition planted;

  /// reliability[s][g]: the drawn accuracy of source s on planted group g.
  std::vector<std::vector<double>> reliability;
};

/// Generates a dataset from `config`. Deterministic in the seed.
[[nodiscard]]
Result<GeneratedData> GenerateSynthetic(const SyntheticConfig& config);

/// \brief Configuration for the object-correlated twin of the generator:
/// sources' reliability is constant within planted groups of *objects*
/// (regions, time windows) instead of attributes. Used to contrast TD-AC
/// with the TD-OC object-partitioning extension (the paper's reference
/// [13] setting).
struct ObjectCorrelatedConfig {
  int num_attributes = 6;
  int num_sources = 10;

  /// Planted groups of 0-based object ids; must partition [0, O).
  std::vector<std::vector<ObjectId>> planted_groups;

  std::vector<double> reliability_levels = {1.0, 0.0, 0.8};
  std::vector<double> level_weights = {0.25, 0.5, 0.25};
  bool stratified_levels = true;
  double level_noise = 0.0;
  double distractor_rate = 0.8;
  int num_false_values = 10;
  double coverage = 1.0;
  uint64_t seed = 42;
};

struct ObjectCorrelatedData {
  Dataset dataset;
  GroundTruth truth;
  std::vector<std::vector<ObjectId>> planted;

  /// reliability[s][g]: accuracy of source s on planted object group g.
  std::vector<std::vector<double>> reliability;
};

/// Generates a dataset whose structural correlation runs along the object
/// axis. Deterministic in the seed.
[[nodiscard]] Result<ObjectCorrelatedData> GenerateObjectCorrelated(
    const ObjectCorrelatedConfig& config);

/// The paper's three synthetic configurations (Tables 3 and 5):
/// DS1: levels (1.0, 0.0, 1.0), planted [(1,2),(4,6),(3),(5)];
/// DS2: levels (1.0, 0.0, 0.8), planted [(2,5),(1,4),(3,6)];
/// DS3: levels (1.0, 0.2, 0.8) with noise, planted [(1,6,3),(2,4,5)].
/// `which` is 1, 2, or 3.
[[nodiscard]]
Result<SyntheticConfig> PaperSyntheticConfig(int which, uint64_t seed = 42);

}  // namespace tdac

#endif  // TDAC_GEN_SYNTHETIC_H_
