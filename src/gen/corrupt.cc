#include "gen/corrupt.h"

#include <algorithm>
#include <utility>

#include "common/csv.h"
#include "common/random.h"

namespace tdac {

namespace {

using Rows = std::vector<std::vector<std::string>>;

// Claim-file column layout (see data/dataset_io.h).
constexpr size_t kSourceCol = 0;
constexpr size_t kObjectCol = 1;
constexpr size_t kAttributeCol = 2;
constexpr size_t kKindCol = 3;
constexpr size_t kValueCol = 4;

/// Indices of data rows (excluding the header) selected at `rate`, with at
/// least one pick whenever any row exists.
std::vector<size_t> PickRows(const Rows& rows, double rate, Rng* rng) {
  std::vector<size_t> picked;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rng->NextBernoulli(rate)) picked.push_back(i);
  }
  if (picked.empty() && rows.size() > 1) {
    picked.push_back(1 + static_cast<size_t>(rng->NextBounded(
                             static_cast<uint64_t>(rows.size() - 1))));
  }
  return picked;
}

/// The most frequent attribute name among data rows (deterministic
/// tie-break: lexicographically smallest), so the column-level modes hit a
/// column that actually matters.
std::string BusiestAttribute(const Rows& rows) {
  std::string best;
  size_t best_count = 0;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() <= kAttributeCol) continue;
    const std::string& name = rows[i][kAttributeCol];
    size_t count = 0;
    for (size_t j = 1; j < rows.size(); ++j) {
      if (rows[j].size() > kAttributeCol && rows[j][kAttributeCol] == name) {
        ++count;
      }
    }
    if (count > best_count || (count == best_count && name < best)) {
      best = name;
      best_count = count;
    }
  }
  return best;
}

std::string Render(const Rows& rows) {
  CsvWriter writer;
  for (const auto& row : rows) writer.WriteRow(row);
  return writer.contents();
}

/// Overwrites ~rate of the bytes after the first newline with junk drawn
/// from a pool that includes quotes and delimiters, so the damage can break
/// CSV framing, not just field contents.
std::string GarbleBytes(std::string text, double rate, Rng* rng) {
  static const char kJunk[] = "\"',;\x01\x7f~#\\";
  const size_t header_end = text.find('\n');
  const size_t begin = header_end == std::string::npos ? 0 : header_end + 1;
  bool hit = false;
  for (size_t i = begin; i < text.size(); ++i) {
    if (!rng->NextBernoulli(rate)) continue;
    text[i] = kJunk[rng->NextBounded(sizeof(kJunk) - 1)];
    hit = true;
  }
  if (!hit && text.size() > begin) {
    const size_t i =
        begin + static_cast<size_t>(
                    rng->NextBounded(static_cast<uint64_t>(text.size() - begin)));
    text[i] = kJunk[rng->NextBounded(sizeof(kJunk) - 1)];
  }
  return text;
}

}  // namespace

const std::vector<CorruptionMode>& AllCorruptionModes() {
  static const std::vector<CorruptionMode> kModes = {
      CorruptionMode::kTruncateRows,        CorruptionMode::kGarbleBytes,
      CorruptionMode::kNonFiniteValues,     CorruptionMode::kWildValues,
      CorruptionMode::kDuplicateClaims,     CorruptionMode::kContradictoryClaims,
      CorruptionMode::kSingleSourceObjects, CorruptionMode::kConstantAttribute,
      CorruptionMode::kEmptyAttribute,
  };
  return kModes;
}

std::string_view CorruptionModeName(CorruptionMode mode) {
  switch (mode) {
    case CorruptionMode::kTruncateRows:
      return "truncate-rows";
    case CorruptionMode::kGarbleBytes:
      return "garble-bytes";
    case CorruptionMode::kNonFiniteValues:
      return "non-finite-values";
    case CorruptionMode::kWildValues:
      return "wild-values";
    case CorruptionMode::kDuplicateClaims:
      return "duplicate-claims";
    case CorruptionMode::kContradictoryClaims:
      return "contradictory-claims";
    case CorruptionMode::kSingleSourceObjects:
      return "single-source-objects";
    case CorruptionMode::kConstantAttribute:
      return "constant-attribute";
    case CorruptionMode::kEmptyAttribute:
      return "empty-attribute";
  }
  return "unknown";
}

std::string CorruptClaimCsv(const std::string& claim_csv,
                            const CorruptionOptions& options) {
  Rng rng(options.seed);

  if (options.mode == CorruptionMode::kGarbleBytes) {
    // Byte damage is deliberately applied to the rendered text — a parse
    // round-trip would sanitize exactly the framing breaks we want.
    return GarbleBytes(claim_csv, options.rate, &rng);
  }

  Result<Rows> parsed = ParseCsv(claim_csv);
  if (!parsed.ok()) {
    // Already-malformed input: pile on byte damage rather than giving up.
    return GarbleBytes(claim_csv, options.rate, &rng);
  }
  Rows rows = std::move(parsed).value();
  if (rows.size() <= 1) return claim_csv;

  switch (options.mode) {
    case CorruptionMode::kGarbleBytes:
      break;  // handled above
    case CorruptionMode::kTruncateRows: {
      for (size_t i : PickRows(rows, options.rate, &rng)) {
        if (rows[i].empty()) continue;
        const size_t keep =
            static_cast<size_t>(rng.NextBounded(rows[i].size()));
        rows[i].resize(keep);
      }
      break;
    }
    case CorruptionMode::kNonFiniteValues: {
      static const char* kLiterals[] = {"nan", "inf", "-inf"};
      for (size_t i : PickRows(rows, options.rate, &rng)) {
        if (rows[i].size() <= kValueCol) continue;
        rows[i][kKindCol] = "double";
        rows[i][kValueCol] = kLiterals[rng.NextBounded(3)];
      }
      break;
    }
    case CorruptionMode::kWildValues: {
      for (size_t i : PickRows(rows, options.rate, &rng)) {
        if (rows[i].size() <= kValueCol) continue;
        rows[i][kKindCol] = "double";
        rows[i][kValueCol] = rng.NextBernoulli(0.5) ? "1e308" : "-1e308";
      }
      break;
    }
    case CorruptionMode::kDuplicateClaims: {
      Rows extra;
      for (size_t i : PickRows(rows, options.rate, &rng)) {
        extra.push_back(rows[i]);
      }
      rows.insert(rows.end(), extra.begin(), extra.end());
      break;
    }
    case CorruptionMode::kContradictoryClaims: {
      Rows extra;
      for (size_t i : PickRows(rows, options.rate, &rng)) {
        if (rows[i].size() <= kValueCol) continue;
        std::vector<std::string> twin = rows[i];
        // The twin must come from a fresh source: ingestion keys claims by
        // (source, object, attribute), so a same-source contradiction would
        // be refused at the door instead of reaching the algorithms.
        twin[kSourceCol] = "contrarian_" + std::to_string(i);
        twin[kKindCol] = "string";
        twin[kValueCol] = "contradiction_" + std::to_string(i);
        extra.push_back(std::move(twin));
      }
      rows.insert(rows.end(), extra.begin(), extra.end());
      break;
    }
    case CorruptionMode::kSingleSourceObjects: {
      size_t next_id = 0;
      for (size_t i : PickRows(rows, options.rate, &rng)) {
        if (rows[i].size() <= kObjectCol) continue;
        rows[i][kObjectCol] = "lonely_object_" + std::to_string(next_id++);
      }
      break;
    }
    case CorruptionMode::kConstantAttribute: {
      const std::string target = BusiestAttribute(rows);
      for (size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].size() > kValueCol && rows[i][kAttributeCol] == target) {
          rows[i][kKindCol] = "string";
          rows[i][kValueCol] = "the_one_constant";
        }
      }
      break;
    }
    case CorruptionMode::kEmptyAttribute: {
      const std::string target = BusiestAttribute(rows);
      Rows kept;
      kept.push_back(rows[0]);
      for (size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].size() > kAttributeCol &&
            rows[i][kAttributeCol] == target) {
          continue;
        }
        kept.push_back(std::move(rows[i]));
      }
      rows = std::move(kept);
      break;
    }
  }
  return Render(rows);
}

}  // namespace tdac
