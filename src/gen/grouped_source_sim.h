#ifndef TDAC_GEN_GROUPED_SOURCE_SIM_H_
#define TDAC_GEN_GROUPED_SOURCE_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/ground_truth.h"
#include "partition/attribute_partition.h"

namespace tdac {

/// \brief Shared engine behind the Stocks and Flights simulators: multiple
/// objects, attribute *families* (structurally correlated groups), per-
/// (source, family) reliability, and two-level coverage (a source covers an
/// object entirely or not at all, then answers each attribute of a covered
/// object independently) — which is what separates the paper's observation
/// counts from its DCR values.
struct GroupedSimConfig {
  std::string name = "sim";
  int num_sources = 10;
  int num_objects = 100;

  /// Attribute families: (family name, #attributes).
  std::vector<std::pair<std::string, int>> families;

  /// Probability that a source tracks a given object at all.
  double object_cover_rate = 0.9;

  /// Probability that a covering source answers a given attribute.
  double attr_answer_rate = 0.75;

  /// Per-(source, family) reliability: base ~ N(base_mean, base_spread)
  /// per source plus an independent family offset ~ N(0, family_spread),
  /// clamped to [0.05, 0.99].
  double base_mean = 0.8;
  double base_spread = 0.08;
  double family_spread = 0.12;

  /// With this probability a (source, family) cell is *unreliable*: its
  /// reliability drops to low_reliability instead of the Gaussian above.
  /// This is the structural correlation the paper exploits — a feed that is
  /// broken for one attribute family is broken for all attributes of that
  /// family.
  double low_fraction = 0.0;
  double low_reliability = 0.2;

  /// Probability that a wrong claim lands on the item's canonical
  /// distractor value (stale quotes, copied typos) rather than a uniform
  /// draw from the pool.
  double distractor_rate = 0.0;

  /// Size of the per-item wrong-value pool.
  int num_false_values = 40;

  uint64_t seed = 42;
};

struct GroupedSimData {
  Dataset dataset;
  GroundTruth truth;

  /// The family partition — the structural correlation in the data.
  AttributePartition families;

  /// reliability[s][f]: accuracy of source s on family f.
  std::vector<std::vector<double>> reliability;
};

[[nodiscard]]
Result<GroupedSimData> GenerateGroupedSim(const GroupedSimConfig& config);

}  // namespace tdac

#endif  // TDAC_GEN_GROUPED_SOURCE_SIM_H_
