#ifndef TDAC_GEN_EXAM_H_
#define TDAC_GEN_EXAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/ground_truth.h"
#include "partition/attribute_partition.h"

namespace tdac {

/// \brief Simulator standing in for the paper's private **Exam** dataset
/// (anonymous admission-exam answers; not redistributable).
///
/// Reproduces the published observables: 248 students (sources) answering
/// up to 124 questions (attributes) of a single exam (one object) across 9
/// domains — Math 1A and Physics mandatory (the first 32 questions),
/// Chemistry 1 xor Math 1B as a choice block (questions 33-62), and five
/// penalized optional domains (questions 63-124). Per-(student, domain)
/// ability makes reliability structurally correlated within a domain.
/// Default rates are calibrated to Table 8's coverage: DCR ~ 81% for the
/// 32-question prefix, ~55% for 62, ~36% for 124.
struct ExamConfig {
  int num_students = 248;

  /// Number of questions kept: 32, 62, or 124 (a prefix of the domain
  /// order above); any value in [1, 124] is accepted.
  int num_questions = 124;

  /// Size of the pool of wrong answers per question — the paper's "range
  /// of false values" of size 25, 50, 100, or 1000.
  int false_range = 25;

  /// Semi-synthetic mode (paper Section 4.3): every unanswered question of
  /// every student is filled with a random false answer, giving full
  /// coverage.
  bool fill_missing = false;

  /// Answer rates, calibrated to the published DCR values.
  double mandatory_answer_rate = 0.81;
  double choice_answer_rate = 0.55;    // within the chosen choice domain
  double optional_enroll_rate = 0.35;  // per (student, optional domain)
  double optional_answer_rate = 0.49;  // within an enrolled optional domain

  /// Ability model: student ability ~ N(mean, spread), plus an independent
  /// per-domain offset ~ N(0, domain_spread), clamped to [0.05, 0.98].
  /// The per-question probability of answering correctly is the domain
  /// ability shifted by the question's difficulty.
  double ability_mean = 0.55;
  double ability_spread = 0.05;
  double domain_spread = 0.25;

  /// Per-question difficulty offset ~ U(-spread, +spread): hard questions
  /// (negative shift) are answered wrongly by most students, which is what
  /// makes the real Exam dataset genuinely difficult for truth discovery
  /// (the paper's Table 9a sits around accuracy 0.66 despite 81% coverage).
  double difficulty_spread = 0.45;

  /// Probability that a wrong answer lands on the question's canonical
  /// *misconception* rather than a uniform draw from the wrong-answer pool.
  /// Students' mistakes cluster (common errors), so on hard questions the
  /// misconception can outvote the correct answer.
  double misconception_rate = 0.65;

  uint64_t seed = 42;
};

/// \brief A generated exam plus its domain structure.
struct ExamData {
  Dataset dataset;
  GroundTruth truth;

  /// (domain name, #questions) in question order.
  std::vector<std::pair<std::string, int>> domains;

  /// The domain partition restricted to the generated questions — the
  /// "real" structural correlation TD-AC should recover.
  AttributePartition domain_partition;

  /// ability[s][d]: accuracy of student s on domain d.
  std::vector<std::vector<double>> ability;
};

[[nodiscard]] Result<ExamData> GenerateExam(const ExamConfig& config);

/// The full 9-domain layout (name, #questions), totalling 124.
std::vector<std::pair<std::string, int>> ExamDomainLayout();

}  // namespace tdac

#endif  // TDAC_GEN_EXAM_H_
