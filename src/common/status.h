#ifndef TDAC_COMMON_STATUS_H_
#define TDAC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tdac {

/// \brief Error categories used across the library.
///
/// The library follows the Status/Result idiom (no exceptions cross the
/// public API). Every fallible operation returns either a `Status` or a
/// `Result<T>` wrapping a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kInternal = 7,
  kNotImplemented = 8,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief A lightweight success-or-error value.
///
/// `Status` is cheap to copy in the success case (a single enum) and carries
/// an explanatory message in the error case.
///
/// The class is [[nodiscard]]: ignoring a returned Status silently drops an
/// error, so every call site must check, propagate, or explicitly void-cast
/// it. `tdac_lint` additionally requires the annotation on every header
/// declaration returning Status by value.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller.
#define TDAC_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::tdac::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (false)

}  // namespace tdac

#endif  // TDAC_COMMON_STATUS_H_
