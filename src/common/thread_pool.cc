#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace tdac {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::clamp(num_threads, 1, kMaxThreads)) {
  const int workers = num_threads_ - 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Drain-then-join: run everything already queued on this thread so no
  // submitted future is abandoned, then wake the workers to exit.
  while (RunOneTask()) {
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::Enqueue(std::function<void()> task) {
  if (workers_.empty()) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
    queued_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_one();
  return true;
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    queued_.fetch_sub(1, std::memory_order_release);
  }
  active_.fetch_add(1, std::memory_order_release);
  task();
  active_.fetch_sub(1, std::memory_order_release);
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      queued_.fetch_sub(1, std::memory_order_release);
    }
    active_.fetch_add(1, std::memory_order_release);
    task();
    active_.fetch_sub(1, std::memory_order_release);
  }
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: worker threads must not be joined during static
  // destruction (tasks could outlive other statics).
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

int ThreadPool::DefaultThreadCount() {
  static const int count = []() {
    if (const char* env = std::getenv("TDAC_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        return static_cast<int>(std::min<long>(v, kMaxThreads));
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(std::min<unsigned>(hw, kMaxThreads)) : 1;
  }();
  return count;
}

}  // namespace tdac
