#ifndef TDAC_COMMON_CSV_H_
#define TDAC_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tdac {

/// \brief Minimal RFC-4180-style CSV support used by the dataset I/O layer.
///
/// Fields containing the delimiter, double quotes, or newlines are quoted;
/// embedded quotes are doubled. Only '\n' record separators are produced;
/// both "\r\n" and "\n" are accepted on input.
class CsvWriter {
 public:
  explicit CsvWriter(char delimiter = ',') : delimiter_(delimiter) {}

  /// Appends one record to the in-memory buffer.
  void WriteRow(const std::vector<std::string>& fields);

  /// Returns everything written so far.
  const std::string& contents() const { return buffer_; }

 private:
  char delimiter_;
  std::string buffer_;
};

/// \brief A parsed CSV document with provenance: `rows[i]` began on
/// physical 1-based line `row_lines[i]` of the input. Quoted fields may
/// span lines, so row index and line number can diverge — error messages
/// should always cite the line number, not the row index.
struct CsvDocument {
  std::vector<std::vector<std::string>> rows;
  std::vector<size_t> row_lines;
};

/// Parses a full CSV document into rows of fields.
[[nodiscard]]
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char delimiter = ',');

/// Like ParseCsv but also records the 1-based starting line of each row,
/// for ingestion errors that point at the offending input line.
[[nodiscard]]
Result<CsvDocument> ParseCsvWithLines(std::string_view text,
                                      char delimiter = ',');

/// Reads and parses a CSV file from disk.
[[nodiscard]] Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, char delimiter = ',');

/// Writes `text` to `path`, overwriting. Flush and close are checked, so
/// short writes and full disks surface as a Status — but the write is NOT
/// atomic: a crash mid-write leaves a torn file. Production output paths
/// use AtomicWriteFile (common/io.h) instead; this stays for scratch files
/// in tests.
[[nodiscard]] Status WriteFile(const std::string& path, std::string_view text);

/// Reads an entire file into a string.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

}  // namespace tdac

#endif  // TDAC_COMMON_CSV_H_
