#ifndef TDAC_COMMON_CHECKPOINT_H_
#define TDAC_COMMON_CHECKPOINT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"

namespace tdac {

/// \brief Durable, versioned, checksummed snapshots for long runs.
///
/// A checkpoint file is a single ASCII header line followed by an opaque
/// payload:
///
///     TDACCKPT <version> <crc32-hex> <payload-bytes>\n
///     <payload>
///
/// The header makes every torn-write and corruption mode detectable with a
/// *distinct* error: a file that does not start with the magic is rejected
/// as not-a-checkpoint, a version above kCheckpointVersion as
/// written-by-a-newer-build, a payload shorter than the declared length as
/// truncated, and any byte flip as a CRC mismatch. Writes go through
/// AtomicWriteFile, so a crash can never produce a half-written *current*
/// checkpoint — the torn cases exist only when something other than this
/// library wrote the file (or a fault hook simulated it), and loading
/// handles them anyway.
inline constexpr uint32_t kCheckpointVersion = 1;

/// Serializes `payload` into the checkpoint format and atomically writes it
/// to `path`.
[[nodiscard]] Status SaveCheckpoint(const std::string& path,
                                    std::string_view payload,
                                    uint32_t version = kCheckpointVersion);

/// Reads and validates a checkpoint, returning its payload. The failure
/// message always names `path` and the precise defect (bad magic /
/// unsupported future version / truncated payload / CRC mismatch).
[[nodiscard]] Result<std::string> LoadCheckpoint(const std::string& path);

/// \brief Configuration for a Checkpointer.
struct CheckpointOptions {
  /// Directory holding the checkpoint files. Empty disables checkpointing
  /// (every Checkpointer call becomes a no-op).
  std::string dir;

  /// Minimum milliseconds between interval snapshots of one slot.
  /// <= 0 snapshots at every opportunity (every MaybeStore call).
  double interval_ms = 1000.0;

  /// Whether LoadForResume may return previously saved state. Off, runs
  /// start fresh and overwrite whatever snapshots exist.
  bool resume = false;
};

/// \brief Manages named checkpoint slots for one run.
///
/// Each slot (e.g. "tdac.sweep") maps to `<dir>/<slot>.ckpt`. Stores keep
/// the previous snapshot as `<slot>.ckpt.prev` before the atomic swap, so
/// there is always a last-good file: a crash in the narrow window between
/// the two renames leaves only `.prev`, and a corrupt or torn current file
/// falls back to `.prev` on load. Callers snapshot *clean* state only —
/// state produced under a tripped guard is recomputed on resume instead of
/// persisted, which is what makes a resumed run bit-identical to an
/// uninterrupted one.
///
/// All methods are safe to call concurrently, but the intended pattern is
/// serial snapshots from the orchestrating thread at batch boundaries.
class Checkpointer {
 public:
  explicit Checkpointer(CheckpointOptions options);

  /// False when no directory was configured — all calls are no-ops.
  bool enabled() const { return !options_.dir.empty(); }

  const CheckpointOptions& options() const { return options_; }

  /// Returns the slot's payload when resuming and a valid snapshot exists:
  /// the current file if it validates, else the `.prev` fallback (with a
  /// warning logged naming the defect). Returns nullopt on a fresh start
  /// (resume off, no snapshot at all, or — with a warning — snapshots that
  /// are all invalid; a corrupt checkpoint never aborts a run, it just
  /// costs the progress it held).
  [[nodiscard]] Result<std::optional<std::string>> LoadForResume(
      const std::string& slot) const;

  /// Interval snapshot: when the slot's interval has elapsed (or on the
  /// slot's first call with interval <= 0), materializes the payload via
  /// `payload_fn` and stores it. `payload_fn` is not called otherwise.
  [[nodiscard]] Status MaybeStore(
      const std::string& slot,
      const std::function<std::string()>& payload_fn);

  /// Unconditional snapshot — the final checkpoint a Deadline/Cancelled
  /// stop writes before unwinding.
  [[nodiscard]] Status StoreNow(const std::string& slot,
                                std::string_view payload);

  /// Removes the slot's current, previous, and temp files — called on
  /// clean completion so a finished run leaves no stale resume state.
  [[nodiscard]] Status Remove(const std::string& slot);

 private:
  std::string SlotPath(const std::string& slot) const;

  CheckpointOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::chrono::steady_clock::time_point>
      last_store_;
};

/// Prefixes a checkpoint payload with a context line identifying the run
/// that wrote it (algorithm name, dataset fingerprint, relevant options).
/// MatchCheckpointContext strips the line again iff the context matches, so
/// a slot left behind by a different run — another dataset, other sweep
/// bounds, an earlier refinement round — is ignored instead of resumed.
std::string BindCheckpointContext(std::string_view context,
                                  std::string_view payload);

/// Inverse of BindCheckpointContext: the inner payload when `stored`
/// carries exactly `context`, nullopt (with a logged warning) otherwise.
std::optional<std::string> MatchCheckpointContext(std::string_view context,
                                                  std::string_view stored);

/// Escapes an arbitrary byte string into a single whitespace-free token
/// ('%', whitespace, and control bytes become %XX), so serialized state can
/// be framed as space-separated fields on one line. Empty input encodes as
/// "%" (an impossible escape, used as the empty marker).
std::string EncodeToken(std::string_view raw);

/// Inverse of EncodeToken; fails on malformed escapes.
[[nodiscard]] Result<std::string> DecodeToken(std::string_view token);

/// Bit-exact double round-trip for checkpoint payloads: the IEEE-754 bits
/// as 16 hex digits. (Decimal formatting would round-trip too, but hex
/// makes the bit-identical-resume contract self-evident.)
std::string HexDouble(double value);
[[nodiscard]] Result<double> ParseHexDouble(std::string_view hex);

}  // namespace tdac

#endif  // TDAC_COMMON_CHECKPOINT_H_
