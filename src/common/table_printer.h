#ifndef TDAC_COMMON_TABLE_PRINTER_H_
#define TDAC_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace tdac {

/// \brief Renders aligned plain-text tables; used by every bench binary to
/// print rows in the same layout as the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; it may have fewer cells than there are headers (the
  /// remainder renders empty) but not more.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with 3 decimals, keeps strings verbatim.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Renders the table with a header rule.
  void Print(std::ostream& os) const;

  /// Renders as a GitHub-flavored markdown table.
  void PrintMarkdown(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<size_t> ComputeWidths() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tdac

#endif  // TDAC_COMMON_TABLE_PRINTER_H_
