#ifndef TDAC_COMMON_STRING_UTIL_H_
#define TDAC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tdac {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Lower-cases ASCII letters.
std::string AsciiToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double v, int precision);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

}  // namespace tdac

#endif  // TDAC_COMMON_STRING_UTIL_H_
