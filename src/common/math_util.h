#ifndef TDAC_COMMON_MATH_UTIL_H_
#define TDAC_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace tdac {

/// Logistic function 1 / (1 + e^{-x}).
double Logistic(double x);

/// Natural log clamped away from log(0): returns log(max(x, floor)).
double SafeLog(double x, double floor = 1e-12);

/// Clamps `x` into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Arithmetic mean; returns 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population standard deviation; returns 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& v);

/// Cosine similarity of two equal-length vectors; 0 if either has zero norm.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Numerically-stable softmax normalization of log-scores, in place.
void SoftmaxInPlace(std::vector<double>* log_scores);

/// n-th Bell number (number of set partitions); n <= 25 to stay in uint64.
unsigned long long BellNumber(int n);

/// Binomial coefficient C(n, k) with 64-bit intermediate math.
unsigned long long Binomial(int n, int k);

}  // namespace tdac

#endif  // TDAC_COMMON_MATH_UTIL_H_
