#ifndef TDAC_COMMON_RUN_GUARD_H_
#define TDAC_COMMON_RUN_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tdac {

/// \brief Why a (possibly guarded) run stopped.
///
/// The first two are *clean* outcomes — the algorithm itself decided to
/// stop — and leave results exactly as they were before run guards
/// existed. The last three are *degraded* outcomes: the run was cut short
/// by a budget, a cancellation, or the numeric rails, and the attached
/// result is the best answer available at that point, never silent
/// garbage (see docs/robustness.md for the full contract).
enum class StopReason {
  /// The convergence test fired (or the algorithm is single-pass).
  kConverged = 0,
  /// The per-algorithm iteration cap or the guard's global iteration
  /// budget ran out before convergence.
  kMaxIterations = 1,
  /// The wall-clock deadline of the RunBudget expired.
  kDeadline = 2,
  /// The CancellationToken was cancelled (e.g. SIGINT in the CLI).
  kCancelled = 3,
  /// A non-finite value was caught by the numeric rails; the result was
  /// rolled back to the last finite iterate and/or sanitized.
  kNonFinite = 4,
  /// The request was shed by admission control before any work ran: a
  /// serving queue at capacity rejects instead of queueing unboundedly
  /// (src/serve). There is no best-so-far result behind this reason —
  /// rejection is immediate, so retrying later is always safe.
  kOverloaded = 5,
};

/// "Converged", "MaxIterations", "Deadline", "Cancelled", "NonFinite",
/// "Overloaded".
std::string_view StopReasonToString(StopReason reason);

/// True for the degraded outcomes (kDeadline, kCancelled, kNonFinite,
/// kOverloaded).
bool IsDegraded(StopReason reason);

/// The more severe of the two reasons (enum order doubles as severity),
/// used when merging per-group partial results into one aggregate.
StopReason CombineStopReasons(StopReason a, StopReason b);

/// \brief Cooperative, thread-safe cancellation flag.
///
/// Producers call Cancel() (async-signal-safe: a lock-free atomic store,
/// so a SIGINT handler may call it directly); consumers poll cancelled()
/// at loop boundaries via RunGuard::ShouldStop(). Cancellation is sticky
/// until Reset().
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  void Reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief Resource limits for one run. Zero/negative fields mean
/// "unlimited".
struct RunBudget {
  /// Wall-clock deadline, measured from RunGuard construction.
  double deadline_ms = 0.0;

  /// Global cap on outer iterations across the whole run — shared by every
  /// fixed-point loop the guard is threaded through (a TD-AC run with 5
  /// groups spends from one pool, not 5).
  int64_t max_total_iterations = 0;

  bool unlimited() const {
    return deadline_ms <= 0.0 && max_total_iterations <= 0;
  }
};

/// \brief A run's guard rail: deadline + iteration budget + cancellation.
///
/// One RunGuard is created per top-level run and threaded (by const
/// reference) through every iterative loop, ParallelFor, and nested base
/// run. All checks are thread-safe; the iteration budget is a shared
/// atomic counter. A default-constructed guard (or RunGuard::None()) never
/// trips and short-circuits every check, so unguarded runs behave — and
/// cost — exactly as before the guard layer existed.
///
/// Checking is *cooperative*: loops call OnIteration() once per outer
/// iteration (or ShouldStop() at phase boundaries) and stop with the
/// returned StopReason, keeping their best-so-far state. By convention the
/// first iteration of a loop is exempt, so a guarded run always produces a
/// usable (if degraded) result rather than an empty one.
class RunGuard {
 public:
  /// An unguarded guard: never trips.
  RunGuard() = default;

  /// Guard with a budget (deadline measured from now) and an optional
  /// cancellation token. The token is not owned and must outlive the guard.
  explicit RunGuard(const RunBudget& budget,
                    const CancellationToken* token = nullptr);

  /// Cancellation-only guard.
  explicit RunGuard(const CancellationToken* token);

  RunGuard(const RunGuard&) = delete;
  RunGuard& operator=(const RunGuard&) = delete;

  /// Shared never-trips instance for unguarded entry points.
  static const RunGuard& None();

  /// Whether any limit or token is configured.
  bool active() const { return active_; }

  /// Phase-boundary check: kCancelled if the token tripped, kDeadline if
  /// the deadline passed, std::nullopt to continue. Never trips on an
  /// inactive guard (and costs one branch).
  std::optional<StopReason> ShouldStop() const;

  /// Loop-boundary check: everything ShouldStop() checks, plus consumes
  /// one unit of the global iteration budget (kMaxIterations once spent).
  std::optional<StopReason> OnIteration() const;

  /// Iterations consumed so far via OnIteration().
  int64_t iterations_consumed() const {
    return iterations_.load(std::memory_order_relaxed);
  }

 private:
  bool active_ = false;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  int64_t max_iterations_ = 0;
  const CancellationToken* token_ = nullptr;
  mutable std::atomic<int64_t> iterations_{0};
};

/// Numeric rails: true when every element is finite (no NaN/±inf).
bool AllFinite(const std::vector<double>& values);
bool AllFinite(const std::vector<std::vector<double>>& values);

/// Status form of the rail for API boundaries: InvalidArgument naming
/// `label` and the offending index when a non-finite element is found.
[[nodiscard]] Status CheckFinite(const std::vector<double>& values,
                                 std::string_view label);

}  // namespace tdac

#endif  // TDAC_COMMON_RUN_GUARD_H_
