#ifndef TDAC_COMMON_THREAD_POOL_H_
#define TDAC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tdac {

/// \brief A fixed-size pool of worker threads with a futures-based task API.
///
/// The pool is the single execution substrate behind every parallel hot
/// path in the library (the TD-AC k sweep, per-group discovery, and
/// partition-search scoring). Design points:
///
///  - `Submit` returns a `std::future` carrying the callable's return value
///    (including `Status` / `Result<T>`) or any thrown exception, so error
///    propagation survives crossing thread boundaries unchanged.
///  - Tasks may submit further tasks (nested submission) — enqueueing never
///    blocks on task completion. Blocking *waits* on sibling futures from
///    inside a pool thread can still starve a fully-loaded pool; the
///    `ParallelFor` helper in common/parallel.h is the nesting-safe way to
///    fan out loop iterations (the caller participates, so it never waits
///    on work that cannot be scheduled).
///  - Destruction drains the queue: tasks already submitted are run to
///    completion before the workers join, so no future returned by `Submit`
///    is ever abandoned.
///  - A pool of size <= 1 spawns no threads at all; `Submit` then runs the
///    task inline. `threads == 1` is therefore an exact serial fallback.
///
/// Determinism contract: the pool schedules tasks in submission order but
/// completes them in any order. Callers that need bit-identical results at
/// every thread count must (a) give each task an independent RNG (seeded
/// by task index, never by thread id) and (b) reduce task outputs in task
/// order, e.g. by writing into a pre-sized vector indexed by task id.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller thread is the remaining
  /// executor via ParallelFor); values <= 1 mean a serial pool with no
  /// worker threads. Values are clamped to `kMaxThreads`.
  explicit ThreadPool(int num_threads);

  /// Drains pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Logical parallelism of this pool (worker threads + the caller), as
  /// configured at construction; always >= 1.
  int num_threads() const { return num_threads_; }

  /// Number of background worker threads (num_threads() - 1, or 0).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Schedules `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` are captured into the future. On a serial pool (or after
  /// Shutdown began) the task runs inline on the calling thread.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (!Enqueue([task]() { (*task)(); })) {
      (*task)();  // serial pool or shutting down: run inline
    }
    return future;
  }

  /// Runs one queued task on the calling thread if any is pending.
  /// Returns false when the queue was empty. Lets blocked callers help
  /// drain the pool instead of idling (used by ParallelFor).
  bool RunOneTask();

  /// Tasks submitted but not yet started. Together with `active()` this is
  /// the pool's instantaneous load — what a serving layer's admission
  /// control compares against capacity before accepting more work. The two
  /// counters are sampled independently (each is one atomic load), so
  /// `queued() + active()` can transiently over- or under-count by one
  /// per worker while a task moves between the states; exact accounting
  /// needs a caller-side counter (see ServeEngine in src/serve/engine.h).
  int queued() const {
    return static_cast<int>(queued_.load(std::memory_order_acquire));
  }

  /// Tasks currently executing on a worker or a helping caller thread.
  int active() const {
    return static_cast<int>(active_.load(std::memory_order_acquire));
  }

  /// The process-wide default pool, sized by `DefaultThreadCount()`.
  /// Constructed on first use; never destroyed (workers are detached-joined
  /// at process exit via static destruction order being irrelevant for a
  /// leaked singleton).
  static ThreadPool& Global();

  /// Default parallelism: the `TDAC_THREADS` environment variable when it
  /// is set to a positive integer, otherwise std::thread::hardware_concurrency
  /// (minimum 1). Read once per process.
  static int DefaultThreadCount();

  /// Upper bound on configurable pool sizes (guards absurd TDAC_THREADS).
  static constexpr int kMaxThreads = 256;

 private:
  /// Returns false if the task was not queued (serial pool / shutdown).
  bool Enqueue(std::function<void()> task);
  void WorkerLoop();

  const int num_threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  /// Depth counters mirroring queue_/execution state; kept as atomics so
  /// queued()/active() never take the pool lock on a monitoring path.
  std::atomic<int64_t> queued_{0};
  std::atomic<int64_t> active_{0};
};

}  // namespace tdac

#endif  // TDAC_COMMON_THREAD_POOL_H_
