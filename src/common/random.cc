#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace tdac {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TDAC_CHECK(bound > 0) << "NextBounded requires positive bound";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TDAC_CHECK(lo <= hi) << "NextInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  uint64_t r = (span == 0) ? NextUint64() : NextBounded(span);
  return lo + static_cast<int64_t>(r);
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double two_pi_u2 = 2.0 * M_PI * u2;
  spare_gaussian_ = mag * std::sin(two_pi_u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(two_pi_u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  TDAC_CHECK(!weights.empty()) << "NextWeighted requires weights";
  double total = 0.0;
  for (double w : weights) {
    TDAC_CHECK(w >= 0.0) << "NextWeighted requires non-negative weights";
    total += w;
  }
  if (total <= 0.0) return static_cast<size_t>(NextBounded(weights.size()));
  double x = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace tdac
