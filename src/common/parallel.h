#ifndef TDAC_COMMON_PARALLEL_H_
#define TDAC_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/run_guard.h"
#include "common/thread_pool.h"

namespace tdac {

/// \brief Tuning knobs for ParallelFor.
struct ParallelForOptions {
  /// Pool to fan out on; nullptr means ThreadPool::Global().
  ThreadPool* pool = nullptr;

  /// Caps the number of threads working on this loop (caller included).
  /// 0 means the pool's full width; 1 forces the exact serial path.
  int max_parallelism = 0;

  /// Loops with fewer iterations than this stay serial (fan-out overhead
  /// is not worth paying for tiny trip counts).
  size_t min_parallel_iterations = 2;

  /// Optional run guard (not owned). When it trips (cancellation or
  /// deadline), remaining iterations are *skipped*: the loop still returns
  /// only after every index was either run or skipped, so slot-write
  /// determinism is preserved for the iterations that did run. Callers that
  /// set a guard must tolerate untouched output slots and are expected to
  /// re-check the guard after the loop to label the result degraded.
  const RunGuard* guard = nullptr;
};

/// \brief Runs `body(i)` for every i in [0, n), fanning the iterations out
/// over a thread pool. Returns after *all* iterations have completed.
///
/// Scheduling is dynamic (an atomic work counter), so iteration-to-thread
/// placement is nondeterministic — but every iteration runs exactly once,
/// and the caller thread participates as a worker. Determinism is the
/// caller's contract: make each iteration independent (own RNG seeded by
/// `i`, writes only to slot `i` of a pre-sized output) and reduce the
/// outputs in index order after the loop; results are then bit-identical
/// at every thread count, including 1.
///
/// Nesting-safe: a body may itself call ParallelFor. Helper tasks that the
/// pool cannot schedule (all workers busy) are simply never needed — the
/// caller finishes the iterations itself and stale helpers no-op later —
/// so no cyclic wait can arise.
///
/// Exceptions thrown by `body` do not cancel remaining iterations (every
/// index still runs, keeping side effects thread-count-invariant); the
/// first-thrown exception is rethrown on the calling thread after the loop
/// drains. With n == 0 the call is a no-op.
void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 const ParallelForOptions& options = {});

/// Resolves a user-facing thread-count knob: values > 0 pass through
/// (clamped to ThreadPool::kMaxThreads), 0 or negative yield the process
/// default (TDAC_THREADS env override, else hardware concurrency).
int EffectiveThreadCount(int requested);

}  // namespace tdac

#endif  // TDAC_COMMON_PARALLEL_H_
