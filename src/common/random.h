#ifndef TDAC_COMMON_RANDOM_H_
#define TDAC_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tdac {

/// \brief Deterministic 64-bit PRNG (xoshiro256**) seeded via splitmix64.
///
/// Every stochastic component of the library takes an explicit seed so that
/// datasets, clusterings, and benches are reproducible bit-for-bit across
/// runs and platforms (no reliance on std::random_device or libstdc++
/// distribution internals).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Draws an index in [0, weights.size()) proportional to non-negative
  /// weights. If all weights are zero, draws uniformly.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Derives an independent child RNG (useful for parallel generators).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// splitmix64 step, exposed for hashing/seeding utilities.
uint64_t SplitMix64(uint64_t* state);

}  // namespace tdac

#endif  // TDAC_COMMON_RANDOM_H_
