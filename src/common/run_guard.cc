#include "common/run_guard.h"

#include <cmath>
#include <string>

namespace tdac {

std::string_view StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged:
      return "Converged";
    case StopReason::kMaxIterations:
      return "MaxIterations";
    case StopReason::kDeadline:
      return "Deadline";
    case StopReason::kCancelled:
      return "Cancelled";
    case StopReason::kNonFinite:
      return "NonFinite";
    case StopReason::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

bool IsDegraded(StopReason reason) {
  return reason == StopReason::kDeadline || reason == StopReason::kCancelled ||
         reason == StopReason::kNonFinite ||
         reason == StopReason::kOverloaded;
}

StopReason CombineStopReasons(StopReason a, StopReason b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

RunGuard::RunGuard(const RunBudget& budget, const CancellationToken* token)
    : token_(token) {
  if (budget.deadline_ms > 0.0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        budget.deadline_ms));
  }
  if (budget.max_total_iterations > 0) {
    max_iterations_ = budget.max_total_iterations;
  }
  active_ = has_deadline_ || max_iterations_ > 0 || token_ != nullptr;
}

RunGuard::RunGuard(const CancellationToken* token) : token_(token) {
  active_ = token_ != nullptr;
}

const RunGuard& RunGuard::None() {
  static const RunGuard none;
  return none;
}

std::optional<StopReason> RunGuard::ShouldStop() const {
  if (!active_) return std::nullopt;
  if (token_ != nullptr && token_->cancelled()) {
    return StopReason::kCancelled;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return StopReason::kDeadline;
  }
  return std::nullopt;
}

std::optional<StopReason> RunGuard::OnIteration() const {
  if (!active_) return std::nullopt;
  if (auto stop = ShouldStop()) return stop;
  if (max_iterations_ > 0 &&
      iterations_.fetch_add(1, std::memory_order_relaxed) >= max_iterations_) {
    return StopReason::kMaxIterations;
  }
  return std::nullopt;
}

bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool AllFinite(const std::vector<std::vector<double>>& values) {
  for (const auto& row : values) {
    if (!AllFinite(row)) return false;
  }
  return true;
}

Status CheckFinite(const std::vector<double>& values, std::string_view label) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return Status::InvalidArgument(std::string(label) +
                                     " contains a non-finite value at index " +
                                     std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace tdac
