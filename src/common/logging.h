#ifndef TDAC_COMMON_LOGGING_H_
#define TDAC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace tdac {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level below which log lines are dropped.
/// Defaults to kInfo; tests and benches may lower it to kDebug.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  bool fatal_ = false;
  std::ostringstream stream_;

  friend class FatalLogMessage;
};

/// Like LogMessage but aborts the process on destruction.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();
};

}  // namespace internal

#define TDAC_LOG_DEBUG \
  ::tdac::internal::LogMessage(::tdac::LogLevel::kDebug, __FILE__, __LINE__)
#define TDAC_LOG_INFO \
  ::tdac::internal::LogMessage(::tdac::LogLevel::kInfo, __FILE__, __LINE__)
#define TDAC_LOG_WARNING \
  ::tdac::internal::LogMessage(::tdac::LogLevel::kWarning, __FILE__, __LINE__)
#define TDAC_LOG_ERROR \
  ::tdac::internal::LogMessage(::tdac::LogLevel::kError, __FILE__, __LINE__)

/// Internal invariant check: logs and aborts when `cond` is false.
#define TDAC_CHECK(cond)                                 \
  if (!(cond))                                           \
  ::tdac::internal::FatalLogMessage(__FILE__, __LINE__)  \
      << "Check failed: " #cond " "

#define TDAC_CHECK_OK(expr)                                   \
  do {                                                        \
    ::tdac::Status _st = (expr);                              \
    if (!_st.ok())                                            \
      ::tdac::internal::FatalLogMessage(__FILE__, __LINE__)   \
          << "Status not OK: " << _st.ToString();             \
  } while (false)

}  // namespace tdac

#endif  // TDAC_COMMON_LOGGING_H_
