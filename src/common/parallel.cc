#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

namespace tdac {

namespace {

/// State shared between the caller and the helper tasks of one loop.
/// Held by shared_ptr because helpers may outlive the ParallelFor call
/// (a helper that never got scheduled runs after the caller returned,
/// finds no work left, and exits).
struct LoopState {
  explicit LoopState(size_t n) : total(n) {}

  const size_t total;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};

  std::mutex mutex;
  std::condition_variable all_done;
  std::exception_ptr first_error;  // guarded by mutex

  const std::function<void(size_t)>* body = nullptr;
  const RunGuard* guard = nullptr;

  /// Claims and runs iterations until the counter is exhausted. When the
  /// guard trips, claimed iterations are skipped but still counted as done
  /// so the caller's completion wait terminates.
  void Work() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        if (guard == nullptr || !guard->ShouldStop()) (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        // Lock so the notify cannot race past the caller's wait check.
        std::lock_guard<std::mutex> lock(mutex);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 const ParallelForOptions& options) {
  if (n == 0) return;
  ThreadPool* pool = options.pool != nullptr ? options.pool
                                             : &ThreadPool::Global();
  int width = options.max_parallelism > 0
                  ? std::min(options.max_parallelism, pool->num_threads())
                  : pool->num_threads();
  const RunGuard* guard =
      options.guard != nullptr && options.guard->active() ? options.guard
                                                          : nullptr;
  if (width <= 1 || n < options.min_parallel_iterations ||
      pool->num_workers() == 0) {
    for (size_t i = 0; i < n; ++i) {
      if (guard != nullptr && guard->ShouldStop()) break;
      body(i);
    }
    return;
  }

  auto state = std::make_shared<LoopState>(n);
  state->body = &body;
  state->guard = guard;
  // The caller is one worker; helpers never outnumber remaining iterations.
  const size_t helpers =
      std::min<size_t>(static_cast<size_t>(width) - 1, n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    // Fire-and-forget: completion is tracked by the done-counter, not by
    // futures, so the caller never blocks on a helper the pool cannot
    // schedule (which is what makes nested ParallelFor deadlock-free).
    pool->Submit([state]() { state->Work(); });
  }
  state->Work();

  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->all_done.wait(lock, [&]() {
      return state->done.load(std::memory_order_acquire) == state->total;
    });
  }
  // `body` lives on the caller's frame: helpers must be done with it here.
  // They are — done == total implies every claimed iteration finished, and
  // unscheduled helpers only touch `state` (kept alive by shared_ptr).
  if (state->first_error) std::rethrow_exception(state->first_error);
}

int EffectiveThreadCount(int requested) {
  if (requested > 0) return std::min(requested, ThreadPool::kMaxThreads);
  return ThreadPool::DefaultThreadCount();
}

}  // namespace tdac
