#include "common/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace tdac {

namespace {

IoFaultInjector* g_fault_injector = nullptr;

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Directory part of `path` ("." when there is no slash).
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("cannot open directory", dir);
  Status status = Status::OK();
  if (::fsync(fd) != 0) status = Errno("fsync failed on directory", dir);
  ::close(fd);
  return status;
}

}  // namespace

/// write(2) the whole buffer in bounded chunks, applying the injector's
/// write-level fault modes per chunk.
Status WriteFileDescriptor(int fd, std::string_view data,
                           const std::string& path) {
  constexpr size_t kChunk = 1 << 16;
  size_t offset = 0;
  while (offset < data.size()) {
    const size_t len = std::min(kChunk, data.size() - offset);
    if (g_fault_injector != nullptr) {
      IoFaultInjector* inj = g_fault_injector;
      switch (inj->mode()) {
        case IoFaultInjector::Mode::kFailWrite:
          if (inj->ShouldTrigger()) {
            inj->RecordTriggered();
            return Status::IoError("write failed " + path +
                                   ": injected I/O error");
          }
          break;
        case IoFaultInjector::Mode::kShortWrite:
          if (inj->ShouldTrigger()) {
            inj->RecordTriggered();
            // Persist half the chunk, then fail: the file is left torn.
            const size_t half = len / 2;
            if (half > 0) {
              (void)::write(fd, data.data() + offset,
                            static_cast<size_t>(half));
            }
            return Status::IoError("write failed " + path +
                                   ": injected short write (" +
                                   std::to_string(half) + " of " +
                                   std::to_string(len) + " bytes persisted)");
          }
          break;
        case IoFaultInjector::Mode::kEnospc:
          if (inj->ShouldTrigger()) {
            inj->RecordTriggered();
            return Status::IoError("write failed " + path + ": " +
                                   std::strerror(ENOSPC));
          }
          break;
        case IoFaultInjector::Mode::kCrashBeforeRename:
        case IoFaultInjector::Mode::kCrashAfterRename:
          break;  // handled at the AtomicWriteFile level
      }
    }
    const ssize_t n = ::write(fd, data.data() + offset, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed", path);
    }
    offset += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string AtomicWriteTempPath(const std::string& path) {
  return path + ".tmp";
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string temp = AtomicWriteTempPath(path);

  bool crash_before_rename = false;
  bool crash_after_rename = false;
  if (g_fault_injector != nullptr) {
    IoFaultInjector* inj = g_fault_injector;
    if (inj->mode() == IoFaultInjector::Mode::kCrashBeforeRename &&
        inj->ShouldTrigger()) {
      crash_before_rename = true;
    } else if (inj->mode() == IoFaultInjector::Mode::kCrashAfterRename &&
               inj->ShouldTrigger()) {
      crash_after_rename = true;
    }
  }

  const int fd = ::open(temp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot open for writing", temp);

  Status status = WriteFileDescriptor(fd, contents, temp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Errno("fsync failed", temp);
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Errno("close failed", temp);
  }
  if (!status.ok()) {
    // The target was never touched; drop the torn temp so no reader can
    // mistake it for real output.
    (void)::unlink(temp.c_str());
    return status;
  }

  if (crash_before_rename) {
    // Simulated crash: fully-written temp left behind, target untouched.
    g_fault_injector->RecordTriggered();
    return Status::IoError("write failed " + path +
                           ": injected crash before rename");
  }

  if (::rename(temp.c_str(), path.c_str()) != 0) {
    Status rename_status = Errno("rename failed", temp + " -> " + path);
    (void)::unlink(temp.c_str());
    return rename_status;
  }

  if (crash_after_rename) {
    // Simulated crash after the atomic swap: the new contents are visible
    // but the caller never learns the write succeeded.
    g_fault_injector->RecordTriggered();
    return Status::IoError("write failed " + path +
                           ": injected crash after rename");
  }

  return FsyncDir(ParentDir(path));
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("rename failed", from + " -> " + to);
  }
  return FsyncDir(ParentDir(to));
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink failed", path);
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    // EEXIST alone is not enough: a plain file of the same name would make
    // every subsequent write into the "directory" fail confusingly.
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::IoError("not a directory: " + path);
  }
  return Errno("mkdir failed", path);
}

Result<std::vector<std::string>> ListDirFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("cannot open directory", dir);
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

uint32_t Crc32(std::string_view data) {
  // Table-driven CRC-32 (reflected 0xEDB88320, init/final 0xFFFFFFFF —
  // the zlib convention), table built once on first use.
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

ScopedIoFaultInjector::ScopedIoFaultInjector(IoFaultInjector* injector) {
  g_fault_injector = injector;
}

ScopedIoFaultInjector::~ScopedIoFaultInjector() { g_fault_injector = nullptr; }

}  // namespace tdac
