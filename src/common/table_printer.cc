#include "common/table_printer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace tdac {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TDAC_CHECK(cells.size() <= headers_.size())
      << "row has more cells than headers";
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::vector<size_t> TablePrinter::ComputeWidths() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void TablePrinter::Print(std::ostream& os) const {
  const std::vector<size_t> widths = ComputeWidths();
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      os << "  " << cell << std::string(widths[c] - cell.size(), ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintMarkdown(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      os << " " << (c < row.size() ? row[c] : std::string()) << " |";
    }
    os << "\n";
  };
  emit(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& row : rows_) emit(row);
}

}  // namespace tdac
