#ifndef TDAC_COMMON_TIMER_H_
#define TDAC_COMMON_TIMER_H_

#include <chrono>

namespace tdac {

/// \brief Wall-clock stopwatch used to report execution times in the bench
/// harnesses (the paper's Time(s) columns).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tdac

#endif  // TDAC_COMMON_TIMER_H_
