#ifndef TDAC_COMMON_RESULT_H_
#define TDAC_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tdac {

/// \brief A value-or-error holder, analogous to arrow::Result.
///
/// A `Result<T>` is either OK and holds a `T`, or holds a non-OK `Status`.
/// Accessing the value of an errored result aborts the process with a
/// diagnostic (library code must check `ok()` first or use the
/// TDAC_ASSIGN_OR_RETURN macro).
///
/// Like `Status`, the class is [[nodiscard]]: a dropped Result is a dropped
/// error. `tdac_lint` enforces the matching annotation on declarations.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }
  /// Constructs an OK result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return std::move(*value_);
  }

  /// Moves the value out of the result. Aborts if not OK.
  T MoveValue() {
    EnsureOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    if (!status_.ok()) {
      std::cerr << "Accessed value of errored Result: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns its status from the
/// enclosing function, otherwise moves the value into `lhs`.
#define TDAC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define TDAC_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define TDAC_ASSIGN_OR_RETURN_CONCAT(x, y) TDAC_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define TDAC_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  TDAC_ASSIGN_OR_RETURN_IMPL(                                                 \
      TDAC_ASSIGN_OR_RETURN_CONCAT(_tdac_result_, __LINE__), lhs, rexpr)

}  // namespace tdac

#endif  // TDAC_COMMON_RESULT_H_
