#ifndef TDAC_COMMON_IO_H_
#define TDAC_COMMON_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tdac {

/// \brief Durable file I/O: atomic whole-file writes plus the small set of
/// POSIX helpers the checkpoint layer needs.
///
/// `AtomicWriteFile` is the single write primitive every output path of the
/// library routes through. It guarantees that a reader of `path` observes
/// either the complete previous contents or the complete new contents —
/// never a torn mixture — regardless of crashes, SIGKILL, or ENOSPC during
/// the write:
///
///   1. the contents are written to `path + ".tmp"` in the same directory,
///   2. the temp file is flushed and fsync'ed,
///   3. the temp file is rename(2)'d over `path` (atomic within a POSIX
///      filesystem),
///   4. the parent directory is fsync'ed so the rename itself is durable.
///
/// On any failure before the rename the temp file is unlinked and `path`
/// is untouched. The temp name is deterministic (`<path>.tmp`), so a
/// half-written temp left behind by a killed process is simply overwritten
/// by the next attempt — no stale-temp accumulation. The corollary is that
/// concurrent writers to the *same* path are not supported (last rename
/// wins; a loser can corrupt the winner's temp mid-write).
[[nodiscard]] Status AtomicWriteFile(const std::string& path,
                                     std::string_view contents);

/// The deterministic temp-file name AtomicWriteFile uses for `path`.
std::string AtomicWriteTempPath(const std::string& path);

/// write(2)s the whole buffer to an already-open descriptor, in bounded
/// chunks, retrying EINTR. This is AtomicWriteFile's write loop exposed for
/// the one caller that legitimately appends instead of atomically
/// replacing: the serving request journal (src/serve/journal.cc), whose
/// records are individually CRC-framed so torn appends are detected on
/// replay rather than prevented up front. Routes through the same
/// IoFaultInjector write hooks as AtomicWriteFile, so journal-append
/// failures are unit-testable. `path` is used in error messages only.
[[nodiscard]] Status WriteFileDescriptor(int fd, std::string_view data,
                                         const std::string& path);

/// True when `path` exists (any file type).
bool FileExists(const std::string& path);

/// rename(2) + parent-directory fsync. Fails if `from` does not exist.
[[nodiscard]] Status RenameFile(const std::string& from, const std::string& to);

/// unlink(2); missing files are OK (idempotent delete).
[[nodiscard]] Status RemoveFile(const std::string& path);

/// Creates `path` as a directory if it does not exist (single level).
[[nodiscard]] Status EnsureDirectory(const std::string& path);

/// Names of regular files directly inside `dir` (no subdirectories, no
/// "."/".."), sorted ascending for deterministic iteration.
[[nodiscard]] Result<std::vector<std::string>> ListDirFiles(
    const std::string& dir);

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) of `data` — the
/// checkpoint format's corruption detector.
uint32_t Crc32(std::string_view data);

/// \brief Test-only fault injection for AtomicWriteFile.
///
/// Installed via ScopedIoFaultInjector, the injector intercepts the write
/// path so torn-write and crash-window behaviour is unit-testable without
/// an actual SIGKILL:
///
///   - kFailWrite: the Nth write(2) call fails cleanly (EIO-style) having
///     persisted nothing.
///   - kShortWrite: the Nth write(2) call persists only half its bytes and
///     then fails — the temp file is left torn at the syscall level.
///   - kEnospc: the Nth write(2) call fails with ENOSPC semantics.
///   - kCrashBeforeRename: the contents are fully written and synced, but
///     the injector "crashes" before the rename — AtomicWriteFile returns
///     an error, the target is untouched, and the temp file is left on
///     disk exactly as a real crash would leave it.
///   - kCrashAfterRename: the rename happens but the injector "crashes"
///     before the parent-directory fsync — the new contents are visible,
///     and the caller never learns the write succeeded (the post-crash
///     reality a resume path must tolerate).
///
/// `trigger_on_call` counts write(2) calls (for the write modes) or
/// AtomicWriteFile invocations (for the crash modes), 1-based, since the
/// injector was installed. Not thread-safe: tests install it around
/// single-threaded write sequences only.
class IoFaultInjector {
 public:
  enum class Mode {
    kFailWrite,
    kShortWrite,
    kEnospc,
    kCrashBeforeRename,
    kCrashAfterRename,
  };

  IoFaultInjector(Mode mode, int trigger_on_call)
      : mode_(mode), trigger_on_call_(trigger_on_call) {}

  Mode mode() const { return mode_; }

  /// Advances the relevant counter; true when this call must fault.
  bool ShouldTrigger() { return ++calls_ == trigger_on_call_; }

  /// How often the injector actually fired (for test assertions).
  int triggered_count() const { return triggered_; }
  void RecordTriggered() { ++triggered_; }

 private:
  Mode mode_;
  int trigger_on_call_;
  int calls_ = 0;
  int triggered_ = 0;
};

/// RAII installer: the injector is active for AtomicWriteFile calls made
/// while the scope is alive. Nesting is not supported.
class ScopedIoFaultInjector {
 public:
  explicit ScopedIoFaultInjector(IoFaultInjector* injector);
  ~ScopedIoFaultInjector();

  ScopedIoFaultInjector(const ScopedIoFaultInjector&) = delete;
  ScopedIoFaultInjector& operator=(const ScopedIoFaultInjector&) = delete;
};

}  // namespace tdac

#endif  // TDAC_COMMON_IO_H_
