#include "common/math_util.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tdac {

double Logistic(double x) {
  if (x >= 0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

double SafeLog(double x, double floor) { return std::log(std::max(x, floor)); }

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TDAC_CHECK(a.size() == b.size()) << "CosineSimilarity: size mismatch";
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void SoftmaxInPlace(std::vector<double>* log_scores) {
  if (log_scores->empty()) return;
  double mx = *std::max_element(log_scores->begin(), log_scores->end());
  double total = 0.0;
  for (double& x : *log_scores) {
    x = std::exp(x - mx);
    total += x;
  }
  for (double& x : *log_scores) x /= total;
}

unsigned long long BellNumber(int n) {
  TDAC_CHECK(n >= 0 && n <= 25) << "BellNumber supports 0 <= n <= 25";
  // Bell triangle.
  std::vector<std::vector<unsigned long long>> tri(
      static_cast<size_t>(n) + 1);
  tri[0] = {1};
  for (int i = 1; i <= n; ++i) {
    tri[i].resize(static_cast<size_t>(i) + 1);
    tri[i][0] = tri[i - 1].back();
    for (int j = 1; j <= i; ++j) {
      tri[i][j] = tri[i][j - 1] + tri[i - 1][j - 1];
    }
  }
  return tri[n][0];
}

unsigned long long Binomial(int n, int k) {
  TDAC_CHECK(n >= 0 && k >= 0) << "Binomial requires non-negative arguments";
  if (k > n) return 0;
  k = std::min(k, n - k);
  unsigned long long r = 1;
  for (int i = 1; i <= k; ++i) {
    r = r * static_cast<unsigned long long>(n - k + i) /
        static_cast<unsigned long long>(i);
  }
  return r;
}

}  // namespace tdac
