#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace tdac {

namespace {

bool NeedsQuoting(std::string_view field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) buffer_ += delimiter_;
    const std::string& f = fields[i];
    if (NeedsQuoting(f, delimiter_)) {
      buffer_ += '"';
      for (char c : f) {
        if (c == '"') buffer_ += '"';
        buffer_ += c;
      }
      buffer_ += '"';
    } else {
      buffer_ += f;
    }
  }
  buffer_ += '\n';
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char delimiter) {
  TDAC_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsvWithLines(text, delimiter));
  return std::move(doc.rows);
}

Result<CsvDocument> ParseCsvWithLines(std::string_view text, char delimiter) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t line = 1;            // physical line currently being scanned
  size_t row_start_line = 1;  // line on which the in-progress row began
  size_t quote_open_line = 1;
  size_t i = 0;
  const size_t n = text.size();
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    doc.rows.push_back(std::move(row));
    doc.row_lines.push_back(row_start_line);
    row.clear();
  };
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        if (c == '\n') ++line;  // quoted fields may span physical lines
        field += c;
        ++i;
      }
    } else if (c == '"' && !field_started && field.empty()) {
      in_quotes = true;
      field_started = true;
      quote_open_line = line;
      ++i;
    } else if (c == delimiter) {
      end_field();
      ++i;
    } else if (c == '\r') {
      // Row terminator, RFC 4180 lenient: CRLF counts once, and a bare CR
      // (classic-Mac line ending) ends the row too instead of silently
      // vanishing from the field.
      end_row();
      ++i;
      if (i < n && text[i] == '\n') ++i;
      ++line;
      row_start_line = line;
    } else if (c == '\n') {
      end_row();
      ++i;
      ++line;
      row_start_line = line;
    } else {
      field += c;
      field_started = true;
      ++i;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        "CSV ends inside a quoted field (quote opened on line " +
        std::to_string(quote_open_line) + ")");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return doc;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, char delimiter) {
  TDAC_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCsv(text, delimiter);
}

Status WriteFile(const std::string& path, std::string_view text) {
  // Deliberately non-durable: the crash-recovery tests use this writer to
  // fabricate torn/corrupt files that AtomicWriteFile cannot produce.
  // Durable paths go through src/common/io.
  // lint: atomic-io-ok (non-durable by contract; tests fabricate torn files)
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IoError("write failed: " + path);
  // flush + close before the final stream-state check: buffered bytes only
  // reach the OS here, and a full disk surfaces as a failbit on close.
  out.flush();
  out.close();
  if (out.fail()) return Status::IoError("write failed on close: " + path);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace tdac
