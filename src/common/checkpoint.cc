#include "common/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "common/csv.h"
#include "common/io.h"
#include "common/logging.h"

namespace tdac {

namespace {

constexpr std::string_view kMagic = "TDACCKPT";

}  // namespace

Status SaveCheckpoint(const std::string& path, std::string_view payload,
                      uint32_t version) {
  char header[64];
  std::snprintf(header, sizeof(header), "TDACCKPT %u %08x %zu\n", version,
                Crc32(payload), payload.size());
  std::string contents = header;
  contents.append(payload.data(), payload.size());
  return AtomicWriteFile(path, contents);
}

Result<std::string> LoadCheckpoint(const std::string& path) {
  TDAC_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));

  const size_t newline = contents.find('\n');
  if (newline == std::string::npos ||
      contents.compare(0, kMagic.size(), kMagic) != 0 ||
      (contents.size() > kMagic.size() && contents[kMagic.size()] != ' ')) {
    return Status::InvalidArgument("checkpoint " + path +
                                   ": bad magic — not a TD-AC checkpoint");
  }
  unsigned version = 0;
  unsigned long crc = 0;
  size_t declared = 0;
  const std::string header = contents.substr(0, newline);
  if (std::sscanf(header.c_str() + kMagic.size(), " %u %lx %zu", &version,
                  &crc, &declared) != 3) {
    return Status::InvalidArgument("checkpoint " + path +
                                   ": bad magic — malformed header");
  }
  if (version > kCheckpointVersion) {
    return Status::FailedPrecondition(
        "checkpoint " + path + ": version " + std::to_string(version) +
        " is newer than this build supports (" +
        std::to_string(kCheckpointVersion) + ")");
  }
  const std::string_view payload =
      std::string_view(contents).substr(newline + 1);
  if (payload.size() < declared) {
    return Status::IoError("checkpoint " + path + ": truncated payload (" +
                           std::to_string(payload.size()) + " of " +
                           std::to_string(declared) + " bytes)");
  }
  if (payload.size() > declared) {
    return Status::IoError("checkpoint " + path + ": trailing garbage (" +
                           std::to_string(payload.size()) + " bytes, " +
                           std::to_string(declared) + " declared)");
  }
  const uint32_t actual = Crc32(payload);
  if (actual != static_cast<uint32_t>(crc)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%08lx vs computed %08x", crc, actual);
    return Status::IoError("checkpoint " + path +
                           ": CRC mismatch (stored " + buf + ")");
  }
  return std::string(payload);
}

Checkpointer::Checkpointer(CheckpointOptions options)
    : options_(std::move(options)) {}

std::string Checkpointer::SlotPath(const std::string& slot) const {
  return options_.dir + "/" + slot + ".ckpt";
}

Result<std::optional<std::string>> Checkpointer::LoadForResume(
    const std::string& slot) const {
  if (!enabled() || !options_.resume) return std::optional<std::string>();
  const std::string path = SlotPath(slot);
  const std::string prev = path + ".prev";
  const bool have_current = FileExists(path);
  const bool have_prev = FileExists(prev);
  if (!have_current && !have_prev) return std::optional<std::string>();

  Status current_status = Status::OK();
  if (have_current) {
    Result<std::string> loaded = LoadCheckpoint(path);
    if (loaded.ok()) return std::optional<std::string>(loaded.MoveValue());
    current_status = loaded.status();
    TDAC_LOG_WARNING << "checkpoint slot '" << slot
                     << "': current snapshot rejected ("
                     << current_status.message()
                     << "); falling back to last-good";
  }
  if (have_prev) {
    Result<std::string> loaded = LoadCheckpoint(prev);
    if (loaded.ok()) return std::optional<std::string>(loaded.MoveValue());
    TDAC_LOG_WARNING << "checkpoint slot '" << slot
                     << "': last-good snapshot also rejected ("
                     << loaded.status().message() << "); starting fresh";
    return std::optional<std::string>();
  }
  TDAC_LOG_WARNING << "checkpoint slot '" << slot
                   << "': no last-good snapshot to fall back to; "
                   << "starting fresh";
  return std::optional<std::string>();
}

Status Checkpointer::MaybeStore(
    const std::string& slot,
    const std::function<std::string()>& payload_fn) {
  if (!enabled()) return Status::OK();
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = last_store_.find(slot);
    if (it != last_store_.end() && options_.interval_ms > 0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(now - it->second).count();
      if (elapsed_ms < options_.interval_ms) return Status::OK();
    }
  }
  return StoreNow(slot, payload_fn());
}

Status Checkpointer::StoreNow(const std::string& slot,
                              std::string_view payload) {
  if (!enabled()) return Status::OK();
  const std::string path = SlotPath(slot);
  // Rotate the current snapshot to last-good before the atomic swap: a
  // crash between the two renames leaves only `.prev`, which LoadForResume
  // falls back to.
  if (FileExists(path)) {
    TDAC_RETURN_NOT_OK(RenameFile(path, path + ".prev"));
  }
  TDAC_RETURN_NOT_OK(SaveCheckpoint(path, payload));
  std::lock_guard<std::mutex> lock(mu_);
  last_store_[slot] = std::chrono::steady_clock::now();
  return Status::OK();
}

Status Checkpointer::Remove(const std::string& slot) {
  if (!enabled()) return Status::OK();
  const std::string path = SlotPath(slot);
  TDAC_RETURN_NOT_OK(RemoveFile(path));
  TDAC_RETURN_NOT_OK(RemoveFile(path + ".prev"));
  TDAC_RETURN_NOT_OK(RemoveFile(AtomicWriteTempPath(path)));
  std::lock_guard<std::mutex> lock(mu_);
  last_store_.erase(slot);
  return Status::OK();
}

std::string BindCheckpointContext(std::string_view context,
                                  std::string_view payload) {
  std::string out = "CTX " + EncodeToken(context) + "\n";
  out.append(payload.data(), payload.size());
  return out;
}

std::optional<std::string> MatchCheckpointContext(std::string_view context,
                                                  std::string_view stored) {
  const size_t newline = stored.find('\n');
  const std::string expected = "CTX " + EncodeToken(context);
  if (newline == std::string_view::npos ||
      stored.substr(0, newline) != expected) {
    TDAC_LOG_WARNING << "checkpoint context mismatch (stored snapshot is "
                     << "from a different run); ignoring it";
    return std::nullopt;
  }
  return std::string(stored.substr(newline + 1));
}

std::string EncodeToken(std::string_view raw) {
  if (raw.empty()) return "%";
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    if (c == '%' || c <= 0x20 || c == 0x7f) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

Result<std::string> DecodeToken(std::string_view token) {
  if (token == "%") return std::string();
  std::string out;
  out.reserve(token.size());
  for (size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out += token[i];
      continue;
    }
    if (i + 2 >= token.size()) {
      return Status::InvalidArgument("malformed token escape in '" +
                                     std::string(token) + "'");
    }
    unsigned value = 0;
    if (std::sscanf(std::string(token.substr(i + 1, 2)).c_str(), "%02x",
                    &value) != 1) {
      return Status::InvalidArgument("malformed token escape in '" +
                                     std::string(token) + "'");
    }
    out += static_cast<char>(value);
    i += 2;
  }
  return out;
}

std::string HexDouble(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

Result<double> ParseHexDouble(std::string_view hex) {
  if (hex.size() != 16) {
    return Status::InvalidArgument("bad hex double '" + std::string(hex) +
                                   "'");
  }
  unsigned long long bits = 0;
  if (std::sscanf(std::string(hex).c_str(), "%llx", &bits) != 1) {
    return Status::InvalidArgument("bad hex double '" + std::string(hex) +
                                   "'");
  }
  double value = 0.0;
  const uint64_t b = bits;
  std::memcpy(&value, &b, sizeof(value));
  return value;
}

}  // namespace tdac
