file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_partitions.dir/bench_table5_partitions.cc.o"
  "CMakeFiles/bench_table5_partitions.dir/bench_table5_partitions.cc.o.d"
  "bench_table5_partitions"
  "bench_table5_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
