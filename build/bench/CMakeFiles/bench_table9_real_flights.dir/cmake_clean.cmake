file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_real_flights.dir/bench_table9_real_flights.cc.o"
  "CMakeFiles/bench_table9_real_flights.dir/bench_table9_real_flights.cc.o.d"
  "bench_table9_real_flights"
  "bench_table9_real_flights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_real_flights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
