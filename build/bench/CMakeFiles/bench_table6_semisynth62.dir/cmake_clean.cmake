file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_semisynth62.dir/bench_table6_semisynth62.cc.o"
  "CMakeFiles/bench_table6_semisynth62.dir/bench_table6_semisynth62.cc.o.d"
  "bench_table6_semisynth62"
  "bench_table6_semisynth62.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_semisynth62.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
