# Empty dependencies file for bench_table6_semisynth62.
# This may be replaced when dependencies are built.
