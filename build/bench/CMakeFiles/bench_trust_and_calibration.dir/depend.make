# Empty dependencies file for bench_trust_and_calibration.
# This may be replaced when dependencies are built.
