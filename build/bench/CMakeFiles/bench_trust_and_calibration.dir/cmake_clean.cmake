file(REMOVE_RECURSE
  "CMakeFiles/bench_trust_and_calibration.dir/bench_trust_and_calibration.cc.o"
  "CMakeFiles/bench_trust_and_calibration.dir/bench_trust_and_calibration.cc.o.d"
  "bench_trust_and_calibration"
  "bench_trust_and_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trust_and_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
