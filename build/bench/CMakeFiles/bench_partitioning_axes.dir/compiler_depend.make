# Empty compiler generated dependencies file for bench_partitioning_axes.
# This may be replaced when dependencies are built.
