file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioning_axes.dir/bench_partitioning_axes.cc.o"
  "CMakeFiles/bench_partitioning_axes.dir/bench_partitioning_axes.cc.o.d"
  "bench_partitioning_axes"
  "bench_partitioning_axes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioning_axes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
