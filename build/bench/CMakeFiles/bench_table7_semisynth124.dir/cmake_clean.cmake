file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_semisynth124.dir/bench_table7_semisynth124.cc.o"
  "CMakeFiles/bench_table7_semisynth124.dir/bench_table7_semisynth124.cc.o.d"
  "bench_table7_semisynth124"
  "bench_table7_semisynth124.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_semisynth124.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
