# Empty compiler generated dependencies file for bench_table7_semisynth124.
# This may be replaced when dependencies are built.
