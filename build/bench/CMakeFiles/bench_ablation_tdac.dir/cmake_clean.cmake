file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tdac.dir/bench_ablation_tdac.cc.o"
  "CMakeFiles/bench_ablation_tdac.dir/bench_ablation_tdac.cc.o.d"
  "bench_ablation_tdac"
  "bench_ablation_tdac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tdac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
