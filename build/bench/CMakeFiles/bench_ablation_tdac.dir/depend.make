# Empty dependencies file for bench_ablation_tdac.
# This may be replaced when dependencies are built.
