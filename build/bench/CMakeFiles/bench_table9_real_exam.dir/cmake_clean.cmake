file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_real_exam.dir/bench_table9_real_exam.cc.o"
  "CMakeFiles/bench_table9_real_exam.dir/bench_table9_real_exam.cc.o.d"
  "bench_table9_real_exam"
  "bench_table9_real_exam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_real_exam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
