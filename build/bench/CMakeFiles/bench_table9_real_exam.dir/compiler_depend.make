# Empty compiler generated dependencies file for bench_table9_real_exam.
# This may be replaced when dependencies are built.
