file(REMOVE_RECURSE
  "CMakeFiles/bench_adversarial_crossover.dir/bench_adversarial_crossover.cc.o"
  "CMakeFiles/bench_adversarial_crossover.dir/bench_adversarial_crossover.cc.o.d"
  "bench_adversarial_crossover"
  "bench_adversarial_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adversarial_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
