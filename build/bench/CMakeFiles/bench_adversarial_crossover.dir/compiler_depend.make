# Empty compiler generated dependencies file for bench_adversarial_crossover.
# This may be replaced when dependencies are built.
