# Empty dependencies file for bench_table9_real_stocks.
# This may be replaced when dependencies are built.
