file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_real_stocks.dir/bench_table9_real_stocks.cc.o"
  "CMakeFiles/bench_table9_real_stocks.dir/bench_table9_real_stocks.cc.o.d"
  "bench_table9_real_stocks"
  "bench_table9_real_stocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_real_stocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
