# Empty compiler generated dependencies file for tdac_cli.
# This may be replaced when dependencies are built.
