file(REMOVE_RECURSE
  "CMakeFiles/tdac_cli.dir/tdac_cli.cc.o"
  "CMakeFiles/tdac_cli.dir/tdac_cli.cc.o.d"
  "tdac_cli"
  "tdac_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdac_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
