# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_algorithms "/root/repo/build/tools/tdac_cli" "algorithms")
set_tests_properties(cli_algorithms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate_and_run "sh" "-c" "/root/repo/build/tools/tdac_cli generate --dataset=ds1 --objects=50               --out-claims=/root/repo/build/tools/cli_claims.csv               --out-truth=/root/repo/build/tools/cli_truth.csv &&           /root/repo/build/tools/tdac_cli stats               --claims=/root/repo/build/tools/cli_claims.csv &&           /root/repo/build/tools/tdac_cli run               --claims=/root/repo/build/tools/cli_claims.csv               --truth=/root/repo/build/tools/cli_truth.csv               --algorithm=Accu --tdac               --out=/root/repo/build/tools/cli_resolved.csv")
set_tests_properties(cli_generate_and_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
