file(REMOVE_RECURSE
  "CMakeFiles/exam_workflow.dir/exam_workflow.cpp.o"
  "CMakeFiles/exam_workflow.dir/exam_workflow.cpp.o.d"
  "exam_workflow"
  "exam_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exam_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
