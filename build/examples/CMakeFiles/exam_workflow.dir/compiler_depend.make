# Empty compiler generated dependencies file for exam_workflow.
# This may be replaced when dependencies are built.
