file(REMOVE_RECURSE
  "CMakeFiles/stocks_pipeline.dir/stocks_pipeline.cpp.o"
  "CMakeFiles/stocks_pipeline.dir/stocks_pipeline.cpp.o.d"
  "stocks_pipeline"
  "stocks_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stocks_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
