# Empty compiler generated dependencies file for stocks_pipeline.
# This may be replaced when dependencies are built.
