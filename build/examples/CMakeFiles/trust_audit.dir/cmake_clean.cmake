file(REMOVE_RECURSE
  "CMakeFiles/trust_audit.dir/trust_audit.cpp.o"
  "CMakeFiles/trust_audit.dir/trust_audit.cpp.o.d"
  "trust_audit"
  "trust_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
