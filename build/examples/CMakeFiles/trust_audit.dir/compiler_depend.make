# Empty compiler generated dependencies file for trust_audit.
# This may be replaced when dependencies are built.
