# Empty dependencies file for custom_base_algorithm.
# This may be replaced when dependencies are built.
