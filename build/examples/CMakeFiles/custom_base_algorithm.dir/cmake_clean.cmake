file(REMOVE_RECURSE
  "CMakeFiles/custom_base_algorithm.dir/custom_base_algorithm.cpp.o"
  "CMakeFiles/custom_base_algorithm.dir/custom_base_algorithm.cpp.o.d"
  "custom_base_algorithm"
  "custom_base_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_base_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
