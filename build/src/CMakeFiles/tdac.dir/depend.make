# Empty dependencies file for tdac.
# This may be replaced when dependencies are built.
