
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/distance.cc" "src/CMakeFiles/tdac.dir/clustering/distance.cc.o" "gcc" "src/CMakeFiles/tdac.dir/clustering/distance.cc.o.d"
  "/root/repo/src/clustering/hierarchical.cc" "src/CMakeFiles/tdac.dir/clustering/hierarchical.cc.o" "gcc" "src/CMakeFiles/tdac.dir/clustering/hierarchical.cc.o.d"
  "/root/repo/src/clustering/kmeans.cc" "src/CMakeFiles/tdac.dir/clustering/kmeans.cc.o" "gcc" "src/CMakeFiles/tdac.dir/clustering/kmeans.cc.o.d"
  "/root/repo/src/clustering/silhouette.cc" "src/CMakeFiles/tdac.dir/clustering/silhouette.cc.o" "gcc" "src/CMakeFiles/tdac.dir/clustering/silhouette.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/tdac.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/tdac.dir/common/csv.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/tdac.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/tdac.dir/common/logging.cc.o.d"
  "/root/repo/src/common/math_util.cc" "src/CMakeFiles/tdac.dir/common/math_util.cc.o" "gcc" "src/CMakeFiles/tdac.dir/common/math_util.cc.o.d"
  "/root/repo/src/common/parallel.cc" "src/CMakeFiles/tdac.dir/common/parallel.cc.o" "gcc" "src/CMakeFiles/tdac.dir/common/parallel.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/tdac.dir/common/random.cc.o" "gcc" "src/CMakeFiles/tdac.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tdac.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tdac.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/tdac.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/tdac.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/tdac.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/tdac.dir/common/table_printer.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/tdac.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/tdac.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/tdac.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/tdac.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/dataset_builder.cc" "src/CMakeFiles/tdac.dir/data/dataset_builder.cc.o" "gcc" "src/CMakeFiles/tdac.dir/data/dataset_builder.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/tdac.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/tdac.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/ground_truth.cc" "src/CMakeFiles/tdac.dir/data/ground_truth.cc.o" "gcc" "src/CMakeFiles/tdac.dir/data/ground_truth.cc.o.d"
  "/root/repo/src/data/profile.cc" "src/CMakeFiles/tdac.dir/data/profile.cc.o" "gcc" "src/CMakeFiles/tdac.dir/data/profile.cc.o.d"
  "/root/repo/src/data/value.cc" "src/CMakeFiles/tdac.dir/data/value.cc.o" "gcc" "src/CMakeFiles/tdac.dir/data/value.cc.o.d"
  "/root/repo/src/eval/calibration.cc" "src/CMakeFiles/tdac.dir/eval/calibration.cc.o" "gcc" "src/CMakeFiles/tdac.dir/eval/calibration.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/tdac.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/tdac.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/tdac.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/tdac.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/tdac.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/tdac.dir/eval/report.cc.o.d"
  "/root/repo/src/eval/series.cc" "src/CMakeFiles/tdac.dir/eval/series.cc.o" "gcc" "src/CMakeFiles/tdac.dir/eval/series.cc.o.d"
  "/root/repo/src/eval/trust_eval.cc" "src/CMakeFiles/tdac.dir/eval/trust_eval.cc.o" "gcc" "src/CMakeFiles/tdac.dir/eval/trust_eval.cc.o.d"
  "/root/repo/src/gen/exam.cc" "src/CMakeFiles/tdac.dir/gen/exam.cc.o" "gcc" "src/CMakeFiles/tdac.dir/gen/exam.cc.o.d"
  "/root/repo/src/gen/flights.cc" "src/CMakeFiles/tdac.dir/gen/flights.cc.o" "gcc" "src/CMakeFiles/tdac.dir/gen/flights.cc.o.d"
  "/root/repo/src/gen/grouped_source_sim.cc" "src/CMakeFiles/tdac.dir/gen/grouped_source_sim.cc.o" "gcc" "src/CMakeFiles/tdac.dir/gen/grouped_source_sim.cc.o.d"
  "/root/repo/src/gen/stocks.cc" "src/CMakeFiles/tdac.dir/gen/stocks.cc.o" "gcc" "src/CMakeFiles/tdac.dir/gen/stocks.cc.o.d"
  "/root/repo/src/gen/synthetic.cc" "src/CMakeFiles/tdac.dir/gen/synthetic.cc.o" "gcc" "src/CMakeFiles/tdac.dir/gen/synthetic.cc.o.d"
  "/root/repo/src/partition/attribute_partition.cc" "src/CMakeFiles/tdac.dir/partition/attribute_partition.cc.o" "gcc" "src/CMakeFiles/tdac.dir/partition/attribute_partition.cc.o.d"
  "/root/repo/src/partition/gen_partition.cc" "src/CMakeFiles/tdac.dir/partition/gen_partition.cc.o" "gcc" "src/CMakeFiles/tdac.dir/partition/gen_partition.cc.o.d"
  "/root/repo/src/partition/greedy_partition.cc" "src/CMakeFiles/tdac.dir/partition/greedy_partition.cc.o" "gcc" "src/CMakeFiles/tdac.dir/partition/greedy_partition.cc.o.d"
  "/root/repo/src/partition/group_runner.cc" "src/CMakeFiles/tdac.dir/partition/group_runner.cc.o" "gcc" "src/CMakeFiles/tdac.dir/partition/group_runner.cc.o.d"
  "/root/repo/src/partition/partition_metrics.cc" "src/CMakeFiles/tdac.dir/partition/partition_metrics.cc.o" "gcc" "src/CMakeFiles/tdac.dir/partition/partition_metrics.cc.o.d"
  "/root/repo/src/partition/set_partition_enumerator.cc" "src/CMakeFiles/tdac.dir/partition/set_partition_enumerator.cc.o" "gcc" "src/CMakeFiles/tdac.dir/partition/set_partition_enumerator.cc.o.d"
  "/root/repo/src/partition/weighting.cc" "src/CMakeFiles/tdac.dir/partition/weighting.cc.o" "gcc" "src/CMakeFiles/tdac.dir/partition/weighting.cc.o.d"
  "/root/repo/src/td/accu.cc" "src/CMakeFiles/tdac.dir/td/accu.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/accu.cc.o.d"
  "/root/repo/src/td/accu_sim.cc" "src/CMakeFiles/tdac.dir/td/accu_sim.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/accu_sim.cc.o.d"
  "/root/repo/src/td/copy_detection.cc" "src/CMakeFiles/tdac.dir/td/copy_detection.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/copy_detection.cc.o.d"
  "/root/repo/src/td/crh.cc" "src/CMakeFiles/tdac.dir/td/crh.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/crh.cc.o.d"
  "/root/repo/src/td/depen.cc" "src/CMakeFiles/tdac.dir/td/depen.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/depen.cc.o.d"
  "/root/repo/src/td/estimates.cc" "src/CMakeFiles/tdac.dir/td/estimates.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/estimates.cc.o.d"
  "/root/repo/src/td/investment.cc" "src/CMakeFiles/tdac.dir/td/investment.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/investment.cc.o.d"
  "/root/repo/src/td/majority_vote.cc" "src/CMakeFiles/tdac.dir/td/majority_vote.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/majority_vote.cc.o.d"
  "/root/repo/src/td/registry.cc" "src/CMakeFiles/tdac.dir/td/registry.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/registry.cc.o.d"
  "/root/repo/src/td/sums.cc" "src/CMakeFiles/tdac.dir/td/sums.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/sums.cc.o.d"
  "/root/repo/src/td/truth_discovery.cc" "src/CMakeFiles/tdac.dir/td/truth_discovery.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/truth_discovery.cc.o.d"
  "/root/repo/src/td/truth_finder.cc" "src/CMakeFiles/tdac.dir/td/truth_finder.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/truth_finder.cc.o.d"
  "/root/repo/src/td/value_similarity.cc" "src/CMakeFiles/tdac.dir/td/value_similarity.cc.o" "gcc" "src/CMakeFiles/tdac.dir/td/value_similarity.cc.o.d"
  "/root/repo/src/tdac/tdac.cc" "src/CMakeFiles/tdac.dir/tdac/tdac.cc.o" "gcc" "src/CMakeFiles/tdac.dir/tdac/tdac.cc.o.d"
  "/root/repo/src/tdac/tdoc.cc" "src/CMakeFiles/tdac.dir/tdac/tdoc.cc.o" "gcc" "src/CMakeFiles/tdac.dir/tdac/tdoc.cc.o.d"
  "/root/repo/src/tdac/truth_vectors.cc" "src/CMakeFiles/tdac.dir/tdac/truth_vectors.cc.o" "gcc" "src/CMakeFiles/tdac.dir/tdac/truth_vectors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
