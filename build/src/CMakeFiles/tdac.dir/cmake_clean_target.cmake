file(REMOVE_RECURSE
  "libtdac.a"
)
