# Empty compiler generated dependencies file for value_similarity_test.
# This may be replaced when dependencies are built.
