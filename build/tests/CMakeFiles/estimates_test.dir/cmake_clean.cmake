file(REMOVE_RECURSE
  "CMakeFiles/estimates_test.dir/estimates_test.cc.o"
  "CMakeFiles/estimates_test.dir/estimates_test.cc.o.d"
  "estimates_test"
  "estimates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
