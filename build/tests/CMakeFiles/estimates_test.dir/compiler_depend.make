# Empty compiler generated dependencies file for estimates_test.
# This may be replaced when dependencies are built.
