file(REMOVE_RECURSE
  "CMakeFiles/truth_discovery_internal_test.dir/truth_discovery_internal_test.cc.o"
  "CMakeFiles/truth_discovery_internal_test.dir/truth_discovery_internal_test.cc.o.d"
  "truth_discovery_internal_test"
  "truth_discovery_internal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truth_discovery_internal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
