# Empty compiler generated dependencies file for truth_discovery_internal_test.
# This may be replaced when dependencies are built.
