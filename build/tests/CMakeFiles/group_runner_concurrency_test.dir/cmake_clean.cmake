file(REMOVE_RECURSE
  "CMakeFiles/group_runner_concurrency_test.dir/group_runner_concurrency_test.cc.o"
  "CMakeFiles/group_runner_concurrency_test.dir/group_runner_concurrency_test.cc.o.d"
  "group_runner_concurrency_test"
  "group_runner_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_runner_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
