# Empty compiler generated dependencies file for group_runner_concurrency_test.
# This may be replaced when dependencies are built.
