file(REMOVE_RECURSE
  "CMakeFiles/tdoc_test.dir/tdoc_test.cc.o"
  "CMakeFiles/tdoc_test.dir/tdoc_test.cc.o.d"
  "tdoc_test"
  "tdoc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdoc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
