# Empty compiler generated dependencies file for tdoc_test.
# This may be replaced when dependencies are built.
