file(REMOVE_RECURSE
  "CMakeFiles/majority_vote_test.dir/majority_vote_test.cc.o"
  "CMakeFiles/majority_vote_test.dir/majority_vote_test.cc.o.d"
  "majority_vote_test"
  "majority_vote_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/majority_vote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
