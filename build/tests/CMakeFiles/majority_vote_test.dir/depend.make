# Empty dependencies file for majority_vote_test.
# This may be replaced when dependencies are built.
