file(REMOVE_RECURSE
  "CMakeFiles/attribute_partition_test.dir/attribute_partition_test.cc.o"
  "CMakeFiles/attribute_partition_test.dir/attribute_partition_test.cc.o.d"
  "attribute_partition_test"
  "attribute_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
