# Empty compiler generated dependencies file for attribute_partition_test.
# This may be replaced when dependencies are built.
