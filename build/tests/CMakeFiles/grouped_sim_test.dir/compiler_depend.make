# Empty compiler generated dependencies file for grouped_sim_test.
# This may be replaced when dependencies are built.
