file(REMOVE_RECURSE
  "CMakeFiles/grouped_sim_test.dir/grouped_sim_test.cc.o"
  "CMakeFiles/grouped_sim_test.dir/grouped_sim_test.cc.o.d"
  "grouped_sim_test"
  "grouped_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
