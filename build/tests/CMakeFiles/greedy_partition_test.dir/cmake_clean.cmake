file(REMOVE_RECURSE
  "CMakeFiles/greedy_partition_test.dir/greedy_partition_test.cc.o"
  "CMakeFiles/greedy_partition_test.dir/greedy_partition_test.cc.o.d"
  "greedy_partition_test"
  "greedy_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
