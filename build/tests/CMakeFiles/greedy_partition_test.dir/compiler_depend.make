# Empty compiler generated dependencies file for greedy_partition_test.
# This may be replaced when dependencies are built.
