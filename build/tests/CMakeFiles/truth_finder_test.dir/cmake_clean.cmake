file(REMOVE_RECURSE
  "CMakeFiles/truth_finder_test.dir/truth_finder_test.cc.o"
  "CMakeFiles/truth_finder_test.dir/truth_finder_test.cc.o.d"
  "truth_finder_test"
  "truth_finder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truth_finder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
