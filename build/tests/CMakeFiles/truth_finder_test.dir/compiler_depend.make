# Empty compiler generated dependencies file for truth_finder_test.
# This may be replaced when dependencies are built.
