# Empty compiler generated dependencies file for copy_detection_test.
# This may be replaced when dependencies are built.
