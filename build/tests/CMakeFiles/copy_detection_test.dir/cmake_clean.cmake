file(REMOVE_RECURSE
  "CMakeFiles/copy_detection_test.dir/copy_detection_test.cc.o"
  "CMakeFiles/copy_detection_test.dir/copy_detection_test.cc.o.d"
  "copy_detection_test"
  "copy_detection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copy_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
