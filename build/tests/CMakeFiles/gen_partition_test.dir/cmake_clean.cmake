file(REMOVE_RECURSE
  "CMakeFiles/gen_partition_test.dir/gen_partition_test.cc.o"
  "CMakeFiles/gen_partition_test.dir/gen_partition_test.cc.o.d"
  "gen_partition_test"
  "gen_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
