# Empty dependencies file for gen_partition_test.
# This may be replaced when dependencies are built.
