# Empty dependencies file for truth_vectors_test.
# This may be replaced when dependencies are built.
