file(REMOVE_RECURSE
  "CMakeFiles/truth_vectors_test.dir/truth_vectors_test.cc.o"
  "CMakeFiles/truth_vectors_test.dir/truth_vectors_test.cc.o.d"
  "truth_vectors_test"
  "truth_vectors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truth_vectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
