file(REMOVE_RECURSE
  "CMakeFiles/set_partition_enumerator_test.dir/set_partition_enumerator_test.cc.o"
  "CMakeFiles/set_partition_enumerator_test.dir/set_partition_enumerator_test.cc.o.d"
  "set_partition_enumerator_test"
  "set_partition_enumerator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_partition_enumerator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
