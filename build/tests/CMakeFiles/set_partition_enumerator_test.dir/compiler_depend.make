# Empty compiler generated dependencies file for set_partition_enumerator_test.
# This may be replaced when dependencies are built.
