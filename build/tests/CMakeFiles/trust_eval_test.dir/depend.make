# Empty dependencies file for trust_eval_test.
# This may be replaced when dependencies are built.
