file(REMOVE_RECURSE
  "CMakeFiles/trust_eval_test.dir/trust_eval_test.cc.o"
  "CMakeFiles/trust_eval_test.dir/trust_eval_test.cc.o.d"
  "trust_eval_test"
  "trust_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
