file(REMOVE_RECURSE
  "CMakeFiles/sums_test.dir/sums_test.cc.o"
  "CMakeFiles/sums_test.dir/sums_test.cc.o.d"
  "sums_test"
  "sums_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sums_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
