# Empty compiler generated dependencies file for sums_test.
# This may be replaced when dependencies are built.
