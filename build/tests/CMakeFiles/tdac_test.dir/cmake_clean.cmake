file(REMOVE_RECURSE
  "CMakeFiles/tdac_test.dir/tdac_test.cc.o"
  "CMakeFiles/tdac_test.dir/tdac_test.cc.o.d"
  "tdac_test"
  "tdac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
