# Empty compiler generated dependencies file for tdac_test.
# This may be replaced when dependencies are built.
