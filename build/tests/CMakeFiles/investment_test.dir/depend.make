# Empty dependencies file for investment_test.
# This may be replaced when dependencies are built.
