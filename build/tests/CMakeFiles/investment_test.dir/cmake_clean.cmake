file(REMOVE_RECURSE
  "CMakeFiles/investment_test.dir/investment_test.cc.o"
  "CMakeFiles/investment_test.dir/investment_test.cc.o.d"
  "investment_test"
  "investment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
