# Empty compiler generated dependencies file for accu_test.
# This may be replaced when dependencies are built.
