file(REMOVE_RECURSE
  "CMakeFiles/accu_test.dir/accu_test.cc.o"
  "CMakeFiles/accu_test.dir/accu_test.cc.o.d"
  "accu_test"
  "accu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
