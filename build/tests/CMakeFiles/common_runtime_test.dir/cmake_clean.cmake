file(REMOVE_RECURSE
  "CMakeFiles/common_runtime_test.dir/common_runtime_test.cc.o"
  "CMakeFiles/common_runtime_test.dir/common_runtime_test.cc.o.d"
  "common_runtime_test"
  "common_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
