# Empty compiler generated dependencies file for common_runtime_test.
# This may be replaced when dependencies are built.
