# Empty dependencies file for crh_test.
# This may be replaced when dependencies are built.
