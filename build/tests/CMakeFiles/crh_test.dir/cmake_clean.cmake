file(REMOVE_RECURSE
  "CMakeFiles/crh_test.dir/crh_test.cc.o"
  "CMakeFiles/crh_test.dir/crh_test.cc.o.d"
  "crh_test"
  "crh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
