file(REMOVE_RECURSE
  "CMakeFiles/weighting_test.dir/weighting_test.cc.o"
  "CMakeFiles/weighting_test.dir/weighting_test.cc.o.d"
  "weighting_test"
  "weighting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
