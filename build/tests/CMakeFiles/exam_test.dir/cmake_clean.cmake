file(REMOVE_RECURSE
  "CMakeFiles/exam_test.dir/exam_test.cc.o"
  "CMakeFiles/exam_test.dir/exam_test.cc.o.d"
  "exam_test"
  "exam_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
